// Frontend lowering tests: the structural program digest, SCC
// condensation into compiled units (singleton, mutual-recursion, and
// non-recursive), per-session ProgramInstance evaluation — lazy
// materialization, fact-driven invalidation, the σ-bind fast path, goal
// filtering — and cancellation at round boundaries.

#include "frontend/lower.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace linrec {
namespace {

std::vector<Rule> Rules(const std::string& text) {
  Result<Program> parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->rules;
}

Atom Goal(const std::string& text) {
  Result<Program> parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->queries.size(), 1u);
  return parsed->queries.front();
}

const char* kTcRules =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";

/// Installs the TC program plus the chain 1→2→…→n over `edge`.
void SetupChain(ProgramInstance& instance, Planner& planner, int n) {
  Result<CompiledProgram> compiled = CompileProgram(Rules(kTcRules), planner);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  instance.SetProgram(
      std::make_shared<const CompiledProgram>(std::move(compiled).value()));
  for (int i = 1; i < n; ++i) {
    Atom fact;
    fact.predicate = "edge";
    fact.terms = {Term::MakeConst(i), Term::MakeConst(i + 1)};
    ASSERT_TRUE(instance.AddFact(fact).ok());
  }
}

TEST(ProgramDigestTest, InvariantUnderRulePermutation) {
  std::vector<Rule> forward = Rules(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
      "reach(Y) :- tc(1, Y).\n");
  std::vector<Rule> shuffled = forward;
  std::rotate(shuffled.begin(), shuffled.begin() + 1, shuffled.end());
  EXPECT_EQ(ProgramDigest(forward), ProgramDigest(shuffled));

  std::vector<Rule> different = Rules(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n");  // right- vs left-linear
  EXPECT_NE(ProgramDigest(forward), ProgramDigest(different));
}

TEST(CompileProgramTest, CondensesIntoDependencyOrderedUnits) {
  Planner planner;
  // reach depends on tc; tc is recursive; edge is base (no unit).
  Result<CompiledProgram> compiled = CompileProgram(
      Rules("reach(Y) :- tc(1, Y).\n"
            "tc(X, Y) :- edge(X, Y).\n"
            "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"),
      planner);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ASSERT_EQ(compiled->units.size(), 2u);
  const std::size_t tc = compiled->unit_of.at("tc");
  const std::size_t reach = compiled->unit_of.at("reach");
  EXPECT_LT(tc, reach);  // dependency-first
  EXPECT_TRUE(compiled->units[tc].closure.has_value());
  EXPECT_FALSE(compiled->units[tc].joint);
  EXPECT_FALSE(compiled->units[reach].closure.has_value());
  EXPECT_EQ(compiled->units[tc].arities.front(), 2u);
  EXPECT_EQ(compiled->plan_explanations.size(), 1u);
}

TEST(CompileProgramTest, MutualRecursionBecomesOneJointUnit) {
  Planner planner;
  Result<CompiledProgram> compiled = CompileProgram(
      Rules("odd(X, Y) :- even(X, Z), step(Z, Y).\n"
            "even(X, Y) :- start(X, Y).\n"
            "even(X, Y) :- odd(X, Z), step(Z, Y).\n"),
      planner);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ASSERT_EQ(compiled->units.size(), 1u);
  EXPECT_TRUE(compiled->units[0].joint);
  EXPECT_EQ(compiled->units[0].members.size(), 2u);
  EXPECT_EQ(compiled->unit_of.at("odd"), compiled->unit_of.at("even"));
  EXPECT_NE(compiled->member_of.at("odd"), compiled->member_of.at("even"));
}

TEST(CompileProgramTest, RejectsNonLinearAndInconsistentArity) {
  Planner planner;
  Result<CompiledProgram> nonlinear = CompileProgram(
      Rules("p(X, Y) :- p(X, Z), p(Z, Y).\n"), planner);
  EXPECT_EQ(nonlinear.status().code(), StatusCode::kInvalidArgument);

  Result<CompiledProgram> arity = CompileProgram(
      Rules("p(X, Y) :- q(X, Y).\n"
            "p(X) :- r(X).\n"),
      planner);
  EXPECT_EQ(arity.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProgramInstanceTest, EvaluatesAndCachesThenInvalidatesOnNewFact) {
  Planner planner;
  ProgramInstance instance;
  SetupChain(instance, planner, 4);  // chain 1→2→3→4

  Result<QueryResult> out = instance.EvalQuery(Goal("?- tc(X, Y)."), planner);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->relation().size(), 6u);
  const std::size_t after_first = instance.derivations();
  EXPECT_GT(after_first, 0u);

  // Cached: re-evaluation derives nothing new.
  out = instance.EvalQuery(Goal("?- tc(X, Y)."), planner);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(instance.derivations(), after_first);

  // A new base fact grows the fixpoint on the next evaluation.
  Atom fact;
  fact.predicate = "edge";
  fact.terms = {Term::MakeConst(4), Term::MakeConst(5)};
  ASSERT_TRUE(instance.AddFact(fact).ok());
  out = instance.EvalQuery(Goal("?- tc(X, Y)."), planner);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->relation().size(), 10u);
  EXPECT_GT(instance.derivations(), after_first);
}

TEST(ProgramInstanceTest, RejectsBadFactsAndUnknownGoals) {
  Planner planner;
  ProgramInstance instance;
  SetupChain(instance, planner, 3);

  Atom derived;
  derived.predicate = "tc";
  derived.terms = {Term::MakeConst(1), Term::MakeConst(2)};
  EXPECT_EQ(instance.AddFact(derived).code(), StatusCode::kInvalidArgument);

  Atom nonground;
  nonground.predicate = "edge";
  nonground.terms = {Term::MakeVar(0), Term::MakeConst(2)};
  EXPECT_EQ(instance.AddFact(nonground).code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(instance.EvalQuery(Goal("?- nope(X, Y)."), planner).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(instance.EvalQuery(Goal("?- tc(X, Y, Z)."), planner).status().code(),
            StatusCode::kInvalidArgument);

  ProgramInstance empty;
  EXPECT_EQ(empty.EvalQuery(Goal("?- tc(X, Y)."), planner).status().code(),
            StatusCode::kInvalidArgument);  // no program loaded
}

TEST(ProgramInstanceTest, SigmaFastPathMatchesMaterializedAnswer) {
  Planner planner;

  // Fast path: point query before anything is materialized.
  ProgramInstance fresh;
  SetupChain(fresh, planner, 6);
  Result<QueryResult> fast = fresh.EvalQuery(Goal("?- tc(2, Y)."), planner);
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(fast->relation().size(), 4u);  // 2→{3,4,5,6}

  // Reference: full materialization then filter.
  ProgramInstance reference;
  SetupChain(reference, planner, 6);
  Result<QueryResult> full =
      reference.EvalQuery(Goal("?- tc(X, Y)."), planner);
  ASSERT_TRUE(full.ok());
  Atom goal = Goal("?- tc(2, Y).");
  Relation filtered = MatchGoal(full->relation(), goal);
  EXPECT_EQ(fast->relation().Sorted(), filtered.Sorted());

  // The σ cone derives strictly less than the full fixpoint.
  EXPECT_LT(fresh.derivations(), reference.derivations());
}

TEST(ProgramInstanceTest, BatchedGoalsAlignWithPerGoalOutcomes) {
  Planner planner;
  ProgramInstance instance;
  SetupChain(instance, planner, 5);
  const std::vector<Atom> goals = {Goal("?- tc(1, Y)."), Goal("?- tc(3, Y)."),
                                   Goal("?- nope(X)."), Goal("?- tc(X, X).")};
  std::vector<Result<QueryResult>> out = instance.EvalQueries(goals, planner);
  ASSERT_EQ(out.size(), 4u);
  ASSERT_TRUE(out[0].ok());
  EXPECT_EQ(out[0]->relation().size(), 4u);
  ASSERT_TRUE(out[1].ok());
  EXPECT_EQ(out[1]->relation().size(), 2u);
  EXPECT_EQ(out[2].status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(out[3].ok());
  EXPECT_EQ(out[3]->relation().size(), 0u);
}

TEST(ProgramInstanceTest, CancellationStopsClosureAtRoundBoundary) {
  Planner planner;
  ProgramInstance instance;
  SetupChain(instance, planner, 8);
  const CancellationToken expired =
      CancellationToken::WithTimeout(std::chrono::milliseconds(0));
  Result<QueryResult> out =
      instance.EvalQuery(Goal("?- tc(X, Y)."), planner, &expired);
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);

  // The instance still answers once the deadline pressure is gone.
  out = instance.EvalQuery(Goal("?- tc(X, Y)."), planner);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->relation().size(), 28u);
}

TEST(MatchGoalTest, FiltersConstantsAndRepeatedVariables) {
  Relation rows(2);
  rows.Insert({1, 1});
  rows.Insert({1, 2});
  rows.Insert({2, 2});
  EXPECT_EQ(MatchGoal(rows, Goal("?- p(X, Y).")).size(), 3u);
  EXPECT_EQ(MatchGoal(rows, Goal("?- p(1, Y).")).size(), 2u);
  EXPECT_EQ(MatchGoal(rows, Goal("?- p(X, 2).")).size(), 2u);
  EXPECT_EQ(MatchGoal(rows, Goal("?- p(X, X).")).size(), 2u);
  EXPECT_EQ(MatchGoal(rows, Goal("?- p(2, 1).")).size(), 0u);
}

TEST(PlannerTest, SharedPlannerCountsOneMissPerStructure) {
  Planner planner;
  const std::size_t before = planner.plan_cache_misses();
  {
    Result<CompiledProgram> a = CompileProgram(Rules(kTcRules), planner);
    ASSERT_TRUE(a.ok());
  }
  const std::size_t after_first = planner.plan_cache_misses();
  EXPECT_EQ(after_first, before + 1);  // one closure structure
  {
    Result<CompiledProgram> b = CompileProgram(Rules(kTcRules), planner);
    ASSERT_TRUE(b.ok());
  }
  EXPECT_EQ(planner.plan_cache_misses(), after_first);  // hit on recompile
  EXPECT_GT(planner.plan_cache_hits(), 0u);
}

}  // namespace
}  // namespace linrec
