#include "common/scc.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace linrec {
namespace {

/// Maps node → index of its component in the result.
std::map<int, std::size_t> ComponentOf(
    const std::vector<std::vector<int>>& components) {
  std::map<int, std::size_t> where;
  for (std::size_t c = 0; c < components.size(); ++c) {
    for (int node : components[c]) where[node] = c;
  }
  return where;
}

TEST(SccTest, EmptyGraph) {
  EXPECT_TRUE(StronglyConnectedComponents({}).empty());
}

TEST(SccTest, DagYieldsSingletonsDependencyFirst) {
  // 0 → 1 → 2: dependencies (higher ids) must come out first.
  std::vector<std::vector<int>> adj{{1}, {2}, {}};
  auto components = StronglyConnectedComponents(adj);
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], std::vector<int>{2});
  EXPECT_EQ(components[1], std::vector<int>{1});
  EXPECT_EQ(components[2], std::vector<int>{0});
}

TEST(SccTest, CycleCollapsesToOneComponent) {
  // 0 → 1 → 2 → 0, plus 2 → 3 (a dependency outside the cycle).
  std::vector<std::vector<int>> adj{{1}, {2}, {0, 3}, {}};
  auto components = StronglyConnectedComponents(adj);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], std::vector<int>{3});  // dependency first
  EXPECT_EQ(components[1], (std::vector<int>{0, 1, 2}));
}

TEST(SccTest, TwoCyclesStayDistinct) {
  // {0,1} ⇄ and {2,3} ⇄, with 1 → 2 linking them.
  std::vector<std::vector<int>> adj{{1}, {0, 2}, {3}, {2}};
  auto components = StronglyConnectedComponents(adj);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<int>{2, 3}));
  EXPECT_EQ(components[1], (std::vector<int>{0, 1}));
}

TEST(SccTest, SelfLoopIsSingletonComponent) {
  // A self-loop makes the singleton cyclic but must not change the
  // partition or merge it with anything.
  std::vector<std::vector<int>> adj{{0, 1}, {}};
  auto components = StronglyConnectedComponents(adj);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], std::vector<int>{1});
  EXPECT_EQ(components[1], std::vector<int>{0});
}

TEST(SccTest, DependencyFirstOrderOnRandomishGraph) {
  // Every edge u → v must have v's component no later than u's.
  std::vector<std::vector<int>> adj{
      {1, 4}, {2}, {0, 3}, {}, {5}, {4, 6}, {3}, {6}};
  auto components = StronglyConnectedComponents(adj);
  auto where = ComponentOf(components);
  std::size_t nodes = 0;
  for (const auto& c : components) nodes += c.size();
  EXPECT_EQ(nodes, adj.size());
  for (std::size_t u = 0; u < adj.size(); ++u) {
    for (int v : adj[u]) {
      EXPECT_LE(where[v], where[static_cast<int>(u)])
          << "edge " << u << " -> " << v;
    }
  }
}

TEST(SccTest, OutOfRangeSuccessorsAreIgnored) {
  std::vector<std::vector<int>> adj{{1, 99, -7}, {}};
  auto components = StronglyConnectedComponents(adj);
  ASSERT_EQ(components.size(), 2u);
}

TEST(SccTest, HundredThousandNodeChainIsIterative) {
  // The regression the iterative frames exist for: a recursive Tarjan
  // would overflow the thread stack on a chain this deep.
  constexpr int kNodes = 100000;
  std::vector<std::vector<int>> adj(kNodes);
  for (int i = 0; i + 1 < kNodes; ++i) adj[static_cast<std::size_t>(i)] = {i + 1};
  auto components = StronglyConnectedComponents(adj);
  ASSERT_EQ(components.size(), static_cast<std::size_t>(kNodes));
  EXPECT_EQ(components.front(), std::vector<int>{kNodes - 1});
  EXPECT_EQ(components.back(), std::vector<int>{0});
}

}  // namespace
}  // namespace linrec
