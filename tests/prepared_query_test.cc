// Prepared-query API tests: Prepare/Bind/Execute round trips, the
// structure-only plan-cache digest (σ value and seed excluded — one
// planning pass per σ-sweep), unified QueryResult with per-execution
// stats, coherent counter resets, and batched multi-query execution on
// the shared pool (determinism across worker counts, mixed single+joint
// batches, shared parameter-relation indexes).

#include "engine/prepared.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "eval/fixpoint.h"
#include "eval/selection.h"
#include "workload/graphs.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

/// Same-generation pair (Example 5.2): commuting, and position 0 is
/// 1-persistent in Down — the planner picks kSeparable for σ on 0.
LinearRule Down() { return LR("p(X,Y) :- p(X,V), down(V,Y)."); }
LinearRule Up() { return LR("p(X,Y) :- p(U,Y), up(X,U)."); }

Database SameGenDb() {
  Database db;
  Relation down = TreeGraph(/*branching=*/2, /*depth=*/5);
  Relation up(2);
  for (TupleView t : down) up.Insert({t[1], t[0]});
  db.GetOrCreate("down", 2) = std::move(down);
  db.GetOrCreate("up", 2) = std::move(up);
  return db;
}

Relation IdentitySeed(const Database& db) {
  Relation q(2);
  for (TupleView t : *db.Find("down")) {
    q.Insert({t[0], t[0]});
    q.Insert({t[1], t[1]});
  }
  return q;
}

TEST(PreparedQueryTest, PrepareBindExecuteMatchesLegacy) {
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(8);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  q.Insert({0, 0});

  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_FALSE(prepared->is_joint());
  EXPECT_FALSE(prepared->has_sigma_param());
  // The prepared plan is seedless: it pins no caller relation.
  EXPECT_EQ(prepared->plan().seed, nullptr);

  auto result = engine.Execute(prepared->Bind().BindSeed(q));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->joint);
  auto legacy = SemiNaiveClosure({tc}, engine.db(), q);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(result->relation(), *legacy);

  // Per-execution stats ride on the result; the engine-global record
  // still accumulates.
  EXPECT_GT(result->stats.derivations, 0u);
  EXPECT_EQ(result->stats.result_size, result->relation().size());
  EXPECT_EQ(engine.stats().derivations, result->stats.derivations);
}

TEST(PreparedQueryTest, SigmaSweepPlansExactlyOnce) {
  // The satellite regression: the plan-cache digest used to include the σ
  // *value*, so sweeping selection constants — Theorem 4.1's own workload
  // — was 100% cache misses. Prepared queries plan once and bind N times.
  Engine engine(SameGenDb());
  Relation q = IdentitySeed(engine.db());
  auto shared_seed = std::make_shared<const Relation>(q);

  auto prepared =
      engine.Prepare(Query::Closure({Down(), Up()}).SelectPosition(0));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_TRUE(prepared->has_sigma_param());
  EXPECT_EQ(prepared->plan().strategy, Strategy::kSeparable);
  EXPECT_TRUE(prepared->plan().sigma_parameterized);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);

  // Reference: full closure, filtered per value.
  auto full = SemiNaiveClosure({Down(), Up()}, engine.db(), q);
  ASSERT_TRUE(full.ok());

  for (Value v = 0; v < 100; ++v) {
    auto result = engine.Execute(prepared->Bind(v).BindSeed(shared_seed));
    ASSERT_TRUE(result.ok()) << "σ value " << v << ": " << result.status();
    EXPECT_EQ(result->relation(), ApplySelection(*full, Selection{0, v}))
        << "σ value " << v;
  }
  // One Prepare + 100 binds = exactly one planning pass.
  EXPECT_EQ(engine.plan_cache_misses(), 1u);

  // The planning/explain path (Engine::Plan) shares the same structural
  // digest: 100 distinct σ values are 100 hits, zero further planning
  // passes.
  const std::size_t hits_before = engine.plan_cache_hits();
  for (Value v = 0; v < 100; ++v) {
    auto plan = engine.Plan(
        Query::Closure({Down(), Up()}).Select(Selection{0, v}).From(q));
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_TRUE(plan->from_plan_cache);
  }
  EXPECT_EQ(engine.plan_cache_hits(), hits_before + 100);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
}

TEST(PreparedQueryTest, BoundSigmaBecomesBindDefault) {
  // Preparing a query whose σ already carries a value keeps the one-line
  // migration path: Bind() with no argument re-uses that value.
  Engine engine(SameGenDb());
  Relation q = IdentitySeed(engine.db());
  Value node = q.Sorted().front()[0];

  auto prepared = engine.Prepare(
      Query::Closure({Down(), Up()}).Select(Selection{0, node}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ASSERT_TRUE(prepared->has_sigma_param());

  auto by_default = engine.Execute(prepared->Bind().BindSeed(q));
  auto by_value = engine.Execute(prepared->Bind(node).BindSeed(q));
  ASSERT_TRUE(by_default.ok()) << by_default.status();
  ASSERT_TRUE(by_value.ok()) << by_value.status();
  EXPECT_EQ(by_default->relation(), by_value->relation());
}

TEST(PreparedQueryTest, PreparedJointMatchesDirectJointClosure) {
  auto w = MakeEvenOddChain(8);
  ASSERT_TRUE(w.ok()) << w.status();
  Engine engine(std::move(w->db));

  auto prepared =
      engine.Prepare(Query::JointClosure(w->members, w->rules));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_TRUE(prepared->is_joint());

  auto result = engine.Execute(prepared->Bind().BindSeeds(w->seeds));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->joint);
  ASSERT_EQ(result->relations.size(), 2u);
  EXPECT_GT(result->stats.derivations, 0u);

  auto direct =
      JointSemiNaiveClosure(w->members, w->rules, engine.db(), w->seeds);
  ASSERT_TRUE(direct.ok()) << direct.status();
  // Member order is preserved by both paths.
  EXPECT_EQ(result->relations[0], (*direct)[0]);
  EXPECT_EQ(result->relations[1], (*direct)[1]);
}

TEST(PreparedQueryTest, BindMisuseSurfacesAtExecute) {
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(4);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  q.Insert({0, 0});

  auto no_sigma = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(no_sigma.ok());
  // Bind(value) without a σ parameter.
  {
    auto out = engine.Execute(no_sigma->Bind(3).BindSeed(q));
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }
  // Missing seed.
  {
    auto out = engine.Execute(no_sigma->Bind());
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.status().message().find("seed"), std::string::npos);
  }
  // Seed arity mismatch.
  {
    Relation bad(3);
    bad.Insert({1, 2, 3});
    auto out = engine.Execute(no_sigma->Bind().BindSeed(bad));
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.status().message().find("arity"), std::string::npos);
  }
  // BindSeeds on a single-predicate prepared query.
  {
    std::vector<Relation> seeds;
    seeds.emplace_back(2);
    auto out = engine.Execute(no_sigma->Bind().BindSeeds(std::move(seeds)));
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.status().message().find("BindSeed"), std::string::npos);
  }

  auto with_param = engine.Prepare(Query::Closure({tc}).SelectPosition(0));
  ASSERT_TRUE(with_param.ok());
  // Bind() with neither a value nor a default.
  {
    auto out = engine.Execute(with_param->Bind().BindSeed(q));
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }

  // A σ-parameterized plan still marks itself unbound for Plan callers.
  {
    auto plan = engine.Plan(Query::Closure({tc}).SelectPosition(0).From(q));
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_TRUE(plan->sigma_parameterized);
  }

  // BindSeed on a joint prepared query.
  {
    auto w = MakeEvenOddChain(4);
    ASSERT_TRUE(w.ok());
    Engine joint_engine(std::move(w->db));
    auto joint = joint_engine.Prepare(
        Query::JointClosure(w->members, w->rules));
    ASSERT_TRUE(joint.ok()) << joint.status();
    Relation seed(1);
    auto out = joint_engine.Execute(joint->Bind().BindSeed(seed));
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.status().message().find("BindSeeds"), std::string::npos);
  }
}

TEST(PreparedQueryTest, ResetCountersResetsCoherently) {
  // ResetStats left the plan-cache hit/miss counters running forever;
  // ResetCounters zeroes the whole observability surface while keeping
  // cache *contents* (a repeated query is still a hit afterwards).
  Engine engine(SameGenDb());
  Relation q = IdentitySeed(engine.db());
  Query query = Query::Closure({Down(), Up()}).From(q);
  auto prepared = engine.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ASSERT_TRUE(
      engine.Execute(prepared->Bind().BindSeed(query.shared_seed())).ok());
  prepared = engine.Prepare(query);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(
      engine.Execute(prepared->Bind().BindSeed(query.shared_seed())).ok());
  EXPECT_GT(engine.stats().derivations, 0u);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
  EXPECT_GT(engine.plan_cache_hits(), 0u);

  // ResetStats alone: stats cleared, cache ledger untouched.
  engine.ResetStats();
  EXPECT_EQ(engine.stats().derivations, 0u);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);

  engine.ResetCounters();
  EXPECT_EQ(engine.stats().derivations, 0u);
  EXPECT_EQ(engine.stats().iterations, 0u);
  EXPECT_EQ(engine.stats().millis, 0.0);
  EXPECT_EQ(engine.plan_cache_hits(), 0u);
  EXPECT_EQ(engine.plan_cache_misses(), 0u);

  // The cached plan survived the counter reset.
  auto plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->from_plan_cache);
  EXPECT_EQ(engine.plan_cache_hits(), 1u);
  EXPECT_EQ(engine.plan_cache_misses(), 0u);
}

// --- Batched execution ----------------------------------------------------

/// A mixed batch over one engine: a σ-sweep on the separable same-gen
/// pair, an unselected closure, and (via a second prepared handle) the
/// batch runs against the same shared parameter relations throughout.
std::vector<BoundQuery> MakeSweepBatch(const PreparedQuery& sweep,
                                       const PreparedQuery& plain,
                                       const std::shared_ptr<const Relation>&
                                           seed,
                                       int sweep_size) {
  std::vector<BoundQuery> batch;
  for (Value v = 0; v < sweep_size; ++v) {
    batch.push_back(sweep.Bind(v).BindSeed(seed));
  }
  batch.push_back(plain.Bind().BindSeed(seed));
  return batch;
}

TEST(ExecuteBatchTest, MatchesSequentialAcrossWorkerCounts) {
  // Real threads even on a 1-core host.
  WorkerPool::OverrideThreadCapForTesting(16);

  // Sequential reference, computed once with a serial engine.
  std::vector<Relation> expected;
  {
    EngineOptions serial;
    serial.parallel_workers = 1;
    Engine engine(SameGenDb(), serial);
    auto seed =
        std::make_shared<const Relation>(IdentitySeed(engine.db()));
    auto sweep =
        engine.Prepare(Query::Closure({Down(), Up()}).SelectPosition(0));
    auto plain = engine.Prepare(Query::Closure({Down(), Up()}));
    ASSERT_TRUE(sweep.ok() && plain.ok());
    for (BoundQuery& bound : MakeSweepBatch(*sweep, *plain, seed, 9)) {
      auto result = engine.Execute(bound);
      ASSERT_TRUE(result.ok()) << result.status();
      expected.push_back(std::move(result->relation()));
    }
  }

  for (int workers : {1, 2, 8}) {
    EngineOptions options;
    options.parallel_workers = workers;
    Engine engine(SameGenDb(), options);
    auto seed =
        std::make_shared<const Relation>(IdentitySeed(engine.db()));
    auto sweep =
        engine.Prepare(Query::Closure({Down(), Up()}).SelectPosition(0));
    auto plain = engine.Prepare(Query::Closure({Down(), Up()}));
    ASSERT_TRUE(sweep.ok() && plain.ok());
    std::vector<BoundQuery> batch = MakeSweepBatch(*sweep, *plain, seed, 9);

    auto results = engine.ExecuteBatch(batch);
    ASSERT_TRUE(results.ok()) << workers << " workers: " << results.status();
    ASSERT_EQ(results->size(), expected.size());
    std::size_t stats_sum = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*results)[i].relation(), expected[i])
          << "batch slot " << i << " at " << workers << " workers";
      EXPECT_GT((*results)[i].stats.derivations, 0u);
      stats_sum += (*results)[i].stats.derivations;
    }
    // The engine-global record is the sum of the per-query records.
    EXPECT_EQ(engine.stats().derivations, stats_sum);
  }

  WorkerPool::OverrideThreadCapForTesting(0);
}

TEST(ExecuteBatchTest, MixedSingleAndJointBatch) {
  WorkerPool::OverrideThreadCapForTesting(16);

  auto w = MakeEvenOddChain(10);
  ASSERT_TRUE(w.ok()) << w.status();
  Database db = std::move(w->db);
  db.GetOrCreate("e", 2) = ChainGraph(10);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  for (int i = 0; i < 10; ++i) q.Insert({i, i});

  for (int workers : {1, 2, 8}) {
    EngineOptions options;
    options.parallel_workers = workers;
    Engine engine(db, options);
    auto single = engine.Prepare(Query::Closure({tc}));
    auto joint =
        engine.Prepare(Query::JointClosure(w->members, w->rules));
    ASSERT_TRUE(single.ok() && joint.ok());

    std::vector<BoundQuery> batch;
    batch.push_back(single->Bind().BindSeed(q));
    batch.push_back(joint->Bind().BindSeeds(w->seeds));
    batch.push_back(single->Bind().BindSeed(q));

    auto results = engine.ExecuteBatch(batch);
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_EQ(results->size(), 3u);

    auto tc_ref = SemiNaiveClosure({tc}, engine.db(), q);
    ASSERT_TRUE(tc_ref.ok());
    EXPECT_FALSE((*results)[0].joint);
    EXPECT_EQ((*results)[0].relation(), *tc_ref);
    EXPECT_EQ((*results)[2].relation(), *tc_ref);

    EXPECT_TRUE((*results)[1].joint);
    ASSERT_EQ((*results)[1].relations.size(), 2u);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ((*results)[1].relations[0].Contains({i}), i % 2 == 0);
      EXPECT_EQ((*results)[1].relations[1].Contains({i}), i % 2 == 1);
    }
  }

  WorkerPool::OverrideThreadCapForTesting(0);
}

TEST(ExecuteBatchTest, SharedParameterIndexBuildsDoNotScaleWithBatchSize) {
  // Every query of a batch probes the same parameter relation `e`; the
  // shared read-side tier must build that index once per batch at most —
  // and zero times once the engine cache is warm — however many queries
  // the batch holds. (Per-query temporaries index privately and are not
  // counted here.)
  WorkerPool::OverrideThreadCapForTesting(16);
  EngineOptions options;
  options.parallel_workers = 4;
  Engine engine(Database{}, options);
  engine.db().GetOrCreate("e", 2) = RandomGraph(64, 128, /*seed=*/7);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto seed = std::make_shared<const Relation>([] {
    Relation q(2);
    for (int i = 0; i < 64; i += 4) q.Insert({i, i});
    return q;
  }());

  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok());
  // Warm the shared tier: the first execution builds e's index.
  ASSERT_TRUE(engine.Execute(prepared->Bind().BindSeed(seed)).ok());

  auto run_batch = [&](int n) -> std::size_t {
    std::vector<BoundQuery> batch;
    for (int i = 0; i < n; ++i) {
      batch.push_back(prepared->Bind().BindSeed(seed));
    }
    const std::size_t before = engine.index_cache().rebuilds();
    auto results = engine.ExecuteBatch(batch);
    EXPECT_TRUE(results.ok()) << results.status();
    return engine.index_cache().rebuilds() - before;
  };

  const std::size_t rebuilds_small = run_batch(2);
  const std::size_t rebuilds_large = run_batch(16);
  EXPECT_EQ(rebuilds_small, 0u);
  EXPECT_EQ(rebuilds_large, 0u);

  WorkerPool::OverrideThreadCapForTesting(0);
}

TEST(ExecuteBatchTest, EmptyBatchAndFailurePropagation) {
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(4);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  q.Insert({0, 0});

  auto empty = engine.ExecuteBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok());
  std::vector<BoundQuery> batch;
  batch.push_back(prepared->Bind().BindSeed(q));
  batch.push_back(prepared->Bind());  // no seed: invalid
  auto out = engine.ExecuteBatch(batch);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  // The error names the failing slot.
  EXPECT_NE(out.status().message().find("batch query 1"), std::string::npos)
      << out.status().message();
}

}  // namespace
}  // namespace linrec
