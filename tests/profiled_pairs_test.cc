// Exhaustive sweep of Theorem 5.1's clauses via the profiled pair
// generator: every combination of clause counts must produce the expected
// per-position clause letters, and the syntactic verdict must agree with
// the definitional test (the pairs are in the restricted class, where
// Theorem 5.2 makes the condition exact).

#include <gtest/gtest.h>

#include <tuple>

#include "commutativity/definitional.h"
#include "commutativity/syntactic.h"
#include "datalog/printer.h"
#include "datalog/traits.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

using ProfileTuple = std::tuple<int, int, int, int, int>;  // a,b,c,d,broken

class ProfiledPairProperty : public ::testing::TestWithParam<ProfileTuple> {};

TEST_P(ProfiledPairProperty, ClausesAndVerdictMatchProfile) {
  auto [a, bpos, c, d, broken] = GetParam();
  ClauseProfile profile{a, bpos, c, d, broken};
  auto pair = MakeProfiledPair(profile);
  ASSERT_TRUE(pair.ok()) << pair.status();

  // Restricted class throughout.
  ASSERT_TRUE(ComputeTraits(pair->first.rule()).InRestrictedClass())
      << ToString(pair->first);
  ASSERT_TRUE(ComputeTraits(pair->second.rule()).InRestrictedClass())
      << ToString(pair->second);

  auto syntactic = CheckSyntacticCondition(pair->first, pair->second);
  ASSERT_TRUE(syntactic.ok()) << syntactic.status();

  const bool expect_commute = broken == 0;
  EXPECT_EQ(syntactic->condition_holds, expect_commute)
      << ToString(pair->first) << "\n"
      << ToString(pair->second);

  // Expected clause letters, in generator position order.
  std::size_t pos = 0;
  for (int i = 0; i < a; ++i) {
    EXPECT_EQ(syntactic->clause_per_position[pos++], 'a');
  }
  for (int i = 0; i < bpos; ++i) {
    EXPECT_EQ(syntactic->clause_per_position[pos++], 'b');
  }
  for (int i = 0; i < 2 * c; ++i) {
    EXPECT_EQ(syntactic->clause_per_position[pos++], 'c');
  }
  for (int i = 0; i < d; ++i) {
    EXPECT_EQ(syntactic->clause_per_position[pos++], 'd');
  }
  for (int i = 0; i < broken; ++i) {
    EXPECT_EQ(syntactic->clause_per_position[pos++], '-');
  }

  // Exactness: the definitional test must agree (Theorem 5.2).
  auto exact = DefinitionalCommute(pair->first, pair->second);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, expect_commute)
      << ToString(pair->first) << "\n"
      << ToString(pair->second);
}

INSTANTIATE_TEST_SUITE_P(
    AllClauseCombinations, ProfiledPairProperty,
    ::testing::Values(
        // Single-clause profiles.
        ProfileTuple{3, 0, 0, 0, 0}, ProfileTuple{0, 3, 0, 0, 0},
        ProfileTuple{0, 0, 2, 0, 0}, ProfileTuple{0, 0, 0, 3, 0},
        // Pairwise combinations.
        ProfileTuple{1, 1, 0, 0, 0}, ProfileTuple{1, 0, 1, 0, 0},
        ProfileTuple{1, 0, 0, 1, 0}, ProfileTuple{0, 1, 1, 0, 0},
        ProfileTuple{0, 1, 0, 1, 0}, ProfileTuple{0, 0, 1, 1, 0},
        // Everything at once.
        ProfileTuple{2, 2, 2, 2, 0}, ProfileTuple{1, 1, 1, 1, 0},
        ProfileTuple{4, 3, 2, 5, 0},
        // Broken positions force a non-commuting verdict.
        ProfileTuple{0, 0, 0, 0, 1}, ProfileTuple{1, 1, 1, 1, 1},
        ProfileTuple{2, 0, 1, 2, 2}, ProfileTuple{3, 3, 0, 0, 3}));

TEST(ProfiledPairTest, EmptyProfileRejected) {
  EXPECT_FALSE(MakeProfiledPair(ClauseProfile{}).ok());
  EXPECT_FALSE(MakeProfiledPair(ClauseProfile{-1, 2, 0, 0, 0}).ok());
}

TEST(ProfiledPairTest, ArityAccountsForCPairs) {
  ClauseProfile profile{1, 1, 2, 1, 0};
  EXPECT_EQ(profile.arity(), 7);
  auto pair = MakeProfiledPair(profile);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->first.arity(), 7u);
}

}  // namespace
}  // namespace linrec
