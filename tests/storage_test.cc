#include <gtest/gtest.h>

#include "common/parallel.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace linrec {
namespace {

TEST(TupleTest, BasicAccess) {
  Tuple t{1, 2, 3};
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t[0], 1);
  EXPECT_EQ(t[2], 3);
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a{1, 2};
  Tuple b{1, 2};
  Tuple c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(TupleTest, Ordering) {
  EXPECT_LT(Tuple({1, 2}), Tuple({1, 3}));
  EXPECT_LT(Tuple({1, 9}), Tuple({2, 0}));
}

TEST(TupleTest, Project) {
  Tuple t{10, 20, 30};
  EXPECT_EQ(t.Project({2, 0}), Tuple({30, 10}));
  EXPECT_EQ(t.Project({}), Tuple({}));
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, VersionBumpsOnNewTuplesOnly) {
  Relation r(1);
  auto v0 = r.version();
  r.Insert({7});
  auto v1 = r.version();
  EXPECT_GT(v1, v0);
  r.Insert({7});
  EXPECT_EQ(r.version(), v1);
}

TEST(RelationTest, UnionWith) {
  Relation a(1), b(1);
  a.Insert({1});
  b.Insert({1});
  b.Insert({2});
  EXPECT_EQ(a.UnionWith(b), 1u);
  EXPECT_EQ(a.size(), 2u);
}

TEST(RelationTest, SortedIsDeterministic) {
  Relation r(2);
  r.Insert({3, 1});
  r.Insert({1, 2});
  r.Insert({1, 1});
  auto sorted = r.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], Tuple({1, 1}));
  EXPECT_EQ(sorted[2], Tuple({3, 1}));
}

TEST(RelationTest, EqualityIsSetEquality) {
  Relation a(1), b(1);
  a.Insert({1});
  a.Insert({2});
  b.Insert({2});
  b.Insert({1});
  EXPECT_EQ(a, b);
  b.Insert({3});
  EXPECT_NE(a, b);
}

TEST(RelationTest, FlatLayoutRowAccess) {
  // Rows live contiguously in insertion order; Row/RowData expose them.
  Relation r(3);
  r.Insert({1, 2, 3});
  r.Insert({4, 5, 6});
  const Value first[] = {1, 2, 3};
  EXPECT_EQ(r.Row(0), TupleView(first, 3));
  EXPECT_EQ(r.Row(1)[2], 6);
  EXPECT_EQ(r.RowData(1)[0], 4);
  // Adjacent rows are arity-strided within one pool.
  EXPECT_EQ(r.RowData(0) + 3, r.RowData(1));
}

TEST(RelationTest, InsertRowIsDeduplicatingHotPath) {
  Relation r(2);
  const Value a[] = {7, 8};
  const Value b[] = {7, 9};
  EXPECT_TRUE(r.InsertRow(a));
  EXPECT_FALSE(r.InsertRow(a));
  EXPECT_TRUE(r.InsertRow(b));
  EXPECT_TRUE(r.ContainsRow(a));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, IterationYieldsViewsInInsertionOrder) {
  Relation r(1);
  for (Value v : {5, 3, 9, 3, 5, 1}) r.Insert({v});
  std::vector<Value> seen;
  for (TupleView t : r) seen.push_back(t[0]);
  EXPECT_EQ(seen, (std::vector<Value>{5, 3, 9, 1}));
}

TEST(RelationTest, DedupSurvivesTableGrowth) {
  // Push far past the initial table size so several rehashes happen, then
  // verify dedup and membership still hold for every row.
  Relation r(2);
  for (Value i = 0; i < 5000; ++i) r.Insert({i, i * 31});
  EXPECT_EQ(r.size(), 5000u);
  for (Value i = 0; i < 5000; ++i) {
    EXPECT_FALSE(r.Insert({i, i * 31}));
  }
  EXPECT_EQ(r.size(), 5000u);
  EXPECT_FALSE(r.Contains({1, 1}));
}

TEST(RelationTest, ReserveDoesNotChangeContents) {
  Relation r(2);
  r.Insert({1, 2});
  auto v = r.version();
  r.Reserve(1000);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.version(), v);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
}

TEST(RelationTest, VersionIsGloballyUniqueAcrossObjects) {
  // Two distinct relations never share a nonzero version even when their
  // contents coincide: versions come from a process-global counter.
  Relation a(1), b(1);
  a.Insert({1});
  b.Insert({1});
  EXPECT_NE(a.version(), 0u);
  EXPECT_NE(a.version(), b.version());
  // A copy shares content, so sharing the stamp is sound.
  Relation c = a;
  EXPECT_EQ(c.version(), a.version());
}

TEST(RelationTest, ZeroArityRelation) {
  Relation r(0);
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple{}));
}

TEST(TupleViewTest, ComparesByContents) {
  const Value a[] = {1, 2};
  const Value b[] = {1, 2};
  const Value c[] = {1, 3};
  EXPECT_EQ(TupleView(a, 2), TupleView(b, 2));
  EXPECT_NE(TupleView(a, 2), TupleView(c, 2));
  EXPECT_LT(TupleView(a, 2), TupleView(c, 2));
  EXPECT_EQ(TupleView(a, 2).ToTuple(), Tuple({1, 2}));
}

TEST(HashIndexTest, LookupReturnsRowIds) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({1, 20});
  r.Insert({2, 30});
  HashIndex index(r, {0});
  RowSpan bucket = index.Lookup(Tuple({1}));
  ASSERT_EQ(bucket.count, 2u);
  EXPECT_EQ(r.Row(bucket[0])[1], 10);
  EXPECT_EQ(r.Row(bucket[1])[1], 20);
  EXPECT_TRUE(index.Lookup(Tuple({9})).empty());
}

TEST(HashIndexTest, AllocationFreeSpanLookup) {
  Relation r(3);
  r.Insert({1, 2, 3});
  r.Insert({1, 2, 4});
  r.Insert({1, 3, 5});
  HashIndex index(r, {0, 1});
  const Value key[] = {1, 2};
  RowSpan bucket = index.Lookup(key);
  EXPECT_EQ(bucket.count, 2u);
  const Value missing[] = {1, 9};
  EXPECT_TRUE(index.Lookup(missing).empty());
}

TEST(HashIndexTest, CorrectUnderRelationGrowth) {
  // Build an index over a large relation (many internal rehashes during
  // the fill) and verify every key's bucket is exact.
  Relation r(2);
  for (Value i = 0; i < 2000; ++i) r.Insert({i % 50, i});
  HashIndex index(r, {0});
  for (Value k = 0; k < 50; ++k) {
    const Value key[] = {k};
    RowSpan bucket = index.Lookup(key);
    EXPECT_EQ(bucket.count, 40u);
    for (RowId row : bucket) EXPECT_EQ(r.Row(row)[0], k);
  }
  EXPECT_EQ(index.distinct_keys(), 50u);
}

TEST(RelationTest, ClearKeepsCapacityAndResetsContents) {
  Relation r(2);
  for (Value i = 0; i < 100; ++i) r.Insert({i, i + 1});
  EXPECT_EQ(r.size(), 100u);
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.version(), 0u);
  EXPECT_FALSE(r.Contains({1, 2}));
  // Reusable after clearing: fresh contents, fresh (nonzero) version.
  r.Insert({7, 8});
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({7, 8}));
  EXPECT_NE(r.version(), 0u);
}

TEST(RelationTest, WhereEqualsFiltersOneColumn) {
  Relation r(3);
  for (Value i = 0; i < 200; ++i) r.Insert({i % 5, i, i * 2});
  Relation filtered = r.WhereEquals(0, 3);
  EXPECT_EQ(filtered.size(), 40u);
  for (TupleView t : filtered) EXPECT_EQ(t[0], 3);
  // Every matching row made it (spot check).
  EXPECT_TRUE(filtered.Contains({3, 3, 6}));
  EXPECT_TRUE(filtered.Contains({3, 198, 396}));
  // No matches and empty input both yield empty relations of the arity.
  EXPECT_TRUE(r.WhereEquals(1, -1).empty());
  Relation empty(3);
  EXPECT_TRUE(empty.WhereEquals(2, 0).empty());
  EXPECT_EQ(empty.WhereEquals(2, 0).arity(), 3u);
}

TEST(RelationTest, PartitionViewCoversRowRanges) {
  Relation r(2);
  for (Value i = 0; i < 10; ++i) r.Insert({i, i});
  PartitionView all = r.View(0, 10);
  EXPECT_EQ(all.size(), 10u);
  PartitionView tail = r.View(7, 10);
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_FALSE(tail.empty());
  EXPECT_TRUE(r.View(4, 4).empty());
  EXPECT_EQ(tail.relation, &r);
}

TEST(PoolMergerTest, MergesPoolsDeduplicatingAgainstTargetAndAcrossPools) {
  Relation target(2);
  target.Insert({0, 0});
  target.Insert({1, 1});

  Relation a(2), b(2), c(2);
  a.Insert({1, 1});  // already in target: dropped
  a.Insert({2, 2});  // new
  b.Insert({2, 2});  // duplicate of a's row: dropped
  b.Insert({3, 3});  // new
  // c empty

  Relation expected = target;
  expected.UnionWith(a);
  expected.UnionWith(b);

  const Relation* pools[] = {&a, &b, &c};
  PoolMerger merger;
  std::size_t added = merger.Merge(pools, 3, &target);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(target, expected);

  // A second merge of the same pools adds nothing (idempotent).
  EXPECT_EQ(merger.Merge(pools, 3, &target), 0u);
  EXPECT_EQ(target, expected);
}

TEST(PoolMergerTest, LargeMergeMatchesUnionWith) {
  // Cross-check the sharded path against the straightforward union on a
  // size that populates many shards, with and without a worker pool.
  Relation a(2), b(2);
  for (Value i = 0; i < 5000; ++i) a.Insert({i, i + 1});
  for (Value i = 2500; i < 7500; ++i) b.Insert({i, i + 1});  // 50% overlap
  Relation target(2);
  for (Value i = 0; i < 1000; ++i) target.Insert({i * 3, i * 3 + 1});

  Relation expected = target;
  expected.UnionWith(a);
  expected.UnionWith(b);

  const Relation* pools[] = {&a, &b};
  {
    Relation serial_target = target;
    PoolMerger merger;
    merger.Merge(pools, 2, &serial_target);
    EXPECT_EQ(serial_target, expected);
  }
  {
    WorkerPool::OverrideThreadCapForTesting(8);
    WorkerPool pool(4);
    Relation parallel_target = target;
    PoolMerger merger;
    merger.Merge(pools, 2, &parallel_target, &pool);
    EXPECT_EQ(parallel_target, expected);
    WorkerPool::OverrideThreadCapForTesting(0);
  }
}

TEST(DatabaseTest, GetOrCreateAndFind) {
  Database db;
  Relation& e = db.GetOrCreate("edge", 2);
  e.Insert({1, 2});
  ASSERT_NE(db.Find("edge"), nullptr);
  EXPECT_EQ(db.Find("edge")->size(), 1u);
  EXPECT_EQ(db.Find("missing"), nullptr);
}

TEST(DatabaseTest, GetCheckedArityMismatch) {
  Database db;
  db.GetOrCreate("e", 2);
  auto ok = db.GetChecked("e", 2);
  EXPECT_TRUE(ok.ok());
  auto bad = db.GetChecked("e", 3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto missing = db.GetChecked("x", 1);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, NamesSorted) {
  Database db;
  db.GetOrCreate("zeta", 1);
  db.GetOrCreate("alpha", 1);
  auto names = db.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
}

}  // namespace
}  // namespace linrec
