#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace linrec {
namespace {

TEST(TupleTest, BasicAccess) {
  Tuple t{1, 2, 3};
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t[0], 1);
  EXPECT_EQ(t[2], 3);
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a{1, 2};
  Tuple b{1, 2};
  Tuple c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(TupleTest, Ordering) {
  EXPECT_LT(Tuple({1, 2}), Tuple({1, 3}));
  EXPECT_LT(Tuple({1, 9}), Tuple({2, 0}));
}

TEST(TupleTest, Project) {
  Tuple t{10, 20, 30};
  EXPECT_EQ(t.Project({2, 0}), Tuple({30, 10}));
  EXPECT_EQ(t.Project({}), Tuple({}));
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, VersionBumpsOnNewTuplesOnly) {
  Relation r(1);
  auto v0 = r.version();
  r.Insert({7});
  auto v1 = r.version();
  EXPECT_GT(v1, v0);
  r.Insert({7});
  EXPECT_EQ(r.version(), v1);
}

TEST(RelationTest, UnionWith) {
  Relation a(1), b(1);
  a.Insert({1});
  b.Insert({1});
  b.Insert({2});
  EXPECT_EQ(a.UnionWith(b), 1u);
  EXPECT_EQ(a.size(), 2u);
}

TEST(RelationTest, SortedIsDeterministic) {
  Relation r(2);
  r.Insert({3, 1});
  r.Insert({1, 2});
  r.Insert({1, 1});
  auto sorted = r.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], Tuple({1, 1}));
  EXPECT_EQ(sorted[2], Tuple({3, 1}));
}

TEST(RelationTest, EqualityIsSetEquality) {
  Relation a(1), b(1);
  a.Insert({1});
  a.Insert({2});
  b.Insert({2});
  b.Insert({1});
  EXPECT_EQ(a, b);
  b.Insert({3});
  EXPECT_NE(a, b);
}

TEST(HashIndexTest, LookupByKey) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({1, 20});
  r.Insert({2, 30});
  HashIndex index(r, {0});
  const auto* bucket = index.Lookup(Tuple({1}));
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 2u);
  EXPECT_EQ(index.Lookup(Tuple({9})), nullptr);
}

TEST(HashIndexTest, CompositeKey) {
  Relation r(3);
  r.Insert({1, 2, 3});
  r.Insert({1, 2, 4});
  r.Insert({1, 3, 5});
  HashIndex index(r, {0, 1});
  const auto* bucket = index.Lookup(Tuple({1, 2}));
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 2u);
}

TEST(DatabaseTest, GetOrCreateAndFind) {
  Database db;
  Relation& e = db.GetOrCreate("edge", 2);
  e.Insert({1, 2});
  ASSERT_NE(db.Find("edge"), nullptr);
  EXPECT_EQ(db.Find("edge")->size(), 1u);
  EXPECT_EQ(db.Find("missing"), nullptr);
}

TEST(DatabaseTest, GetCheckedArityMismatch) {
  Database db;
  db.GetOrCreate("e", 2);
  auto ok = db.GetChecked("e", 2);
  EXPECT_TRUE(ok.ok());
  auto bad = db.GetChecked("e", 3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  auto missing = db.GetChecked("x", 1);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, NamesSorted) {
  Database db;
  db.GetOrCreate("zeta", 1);
  db.GetOrCreate("alpha", 1);
  auto names = db.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
}

}  // namespace
}  // namespace linrec
