#include "cq/homomorphism.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace linrec {
namespace {

Rule R(const std::string& text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

TEST(HomomorphismTest, IdentityExists) {
  Rule r = R("p(X,Y) :- e(X,Z), e(Z,Y).");
  EXPECT_TRUE(FindHomomorphism(r, r).has_value());
}

TEST(HomomorphismTest, FoldsIntoSmallerRule) {
  Rule from = R("p(X) :- e(X,Y), e(X,Z).");
  Rule to = R("p(X) :- e(X,Y).");
  // Y, Z can both map to Y.
  EXPECT_TRUE(FindHomomorphism(from, to).has_value());
  // The other direction also holds here (subset body).
  EXPECT_TRUE(FindHomomorphism(to, from).has_value());
}

TEST(HomomorphismTest, DistinguishedVariablesArePinned) {
  Rule from = R("p(X) :- e(X,Y).");
  Rule to = R("p(X) :- e(Y,X).");
  // X must stay at head position; e(X,·) cannot map onto e(·,X).
  EXPECT_FALSE(FindHomomorphism(from, to).has_value());
}

TEST(HomomorphismTest, PredicateMismatch) {
  Rule from = R("p(X) :- e(X,X).");
  Rule to = R("p(X) :- f(X,X).");
  EXPECT_FALSE(FindHomomorphism(from, to).has_value());
}

TEST(HomomorphismTest, ConstantsMustMatch) {
  Rule from = R("p(X) :- e(X,1).");
  Rule to1 = R("p(X) :- e(X,1).");
  Rule to2 = R("p(X) :- e(X,2).");
  EXPECT_TRUE(FindHomomorphism(from, to1).has_value());
  EXPECT_FALSE(FindHomomorphism(from, to2).has_value());
}

TEST(HomomorphismTest, VariableCanMapToConstant) {
  Rule from = R("p(X) :- e(X,Y).");
  Rule to = R("p(X) :- e(X,3).");
  EXPECT_TRUE(FindHomomorphism(from, to).has_value());
}

TEST(ContainmentTest, PathContainsLongerPath) {
  // s: paths of length 2; r: edges reachable in one hop... classic:
  // r = p(X,Y) :- e(X,Y) ("some edge"), s = p(X,Y) :- e(X,Z), e(Z,Y).
  // s is NOT contained in r and r is NOT contained in s (different heads'
  // bindings), but s' = p(X,Y) :- e(X,Z), e(Z,Y), e(X,Y) IS contained in r.
  Rule r = R("p(X,Y) :- e(X,Y).");
  Rule s = R("p(X,Y) :- e(X,Z), e(Z,Y), e(X,Y).");
  EXPECT_TRUE(IsContainedIn(s, r));
  EXPECT_FALSE(IsContainedIn(r, s));
}

TEST(ContainmentTest, MoreConstrainedIsContained) {
  Rule loose = R("p(X) :- e(X,Y).");
  Rule tight = R("p(X) :- e(X,Y), g(Y).");
  EXPECT_TRUE(IsContainedIn(tight, loose));
  EXPECT_FALSE(IsContainedIn(loose, tight));
}

TEST(EquivalenceTest, RenamedRulesAreEquivalent) {
  Rule a = R("p(X,Y) :- e(X,Z), f(Z,Y).");
  Rule b = R("p(X,Y) :- f(W,Y), e(X,W).");
  EXPECT_TRUE(AreEquivalent(a, b));
}

TEST(EquivalenceTest, RedundantAtomDoesNotChangeQuery) {
  Rule a = R("p(X) :- e(X,Y).");
  Rule b = R("p(X) :- e(X,Y), e(X,Z).");
  EXPECT_TRUE(AreEquivalent(a, b));
}

TEST(EquivalenceTest, DifferentQueriesNotEquivalent) {
  Rule a = R("p(X) :- e(X,Y).");
  Rule b = R("p(X) :- e(Y,X).");
  EXPECT_FALSE(AreEquivalent(a, b));
}

TEST(UnionContainmentTest, MemberwiseContainment) {
  Rule r = R("p(X) :- e(X,Y), g(Y).");
  std::vector<Rule> sum{R("p(X) :- e(X,Y)."), R("p(X) :- g(X).")};
  EXPECT_TRUE(ContainedInUnion(r, sum));
  Rule not_contained = R("p(X) :- h(X).");
  EXPECT_FALSE(ContainedInUnion(not_contained, sum));
}

TEST(UnionEquivalenceTest, PermutedUnionsEquivalent) {
  std::vector<Rule> a{R("p(X) :- e(X,Y)."), R("p(X) :- f(X).")};
  std::vector<Rule> b{R("p(X) :- f(X)."), R("p(X) :- e(X,W).")};
  EXPECT_TRUE(UnionsEquivalent(a, b));
  std::vector<Rule> c{R("p(X) :- f(X).")};
  EXPECT_FALSE(UnionsEquivalent(a, c));
}

TEST(HomomorphismTest, HeadArityMismatchIsNoHom) {
  Rule a = R("p(X) :- e(X,X).");
  Rule b = R("p(X,Y) :- e(X,Y).");
  EXPECT_FALSE(FindHomomorphism(a, b).has_value());
}

TEST(HomomorphismTest, RecursivePredicateTreatedAsOwnSymbol) {
  // Body occurrences of the head predicate (P_I) only map to each other.
  Rule a = R("p(X,Y) :- p(X,Z), e(Z,Y).");
  Rule b = R("p(X,Y) :- e(X,Z), e(Z,Y).");
  EXPECT_FALSE(FindHomomorphism(a, b).has_value());
}

}  // namespace
}  // namespace linrec
