#include "datalog/parser.h"

#include <gtest/gtest.h>

#include "datalog/printer.h"
#include "datalog/traits.h"

namespace linrec {
namespace {

TEST(ParserTest, SimpleRule) {
  auto rule = ParseRule("path(X,Y) :- edge(X,Y).");
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ(rule->head().predicate, "path");
  EXPECT_EQ(rule->head().arity(), 2u);
  ASSERT_EQ(rule->body().size(), 1u);
  EXPECT_EQ(rule->body()[0].predicate, "edge");
}

TEST(ParserTest, SharedVariablesGetOneId) {
  auto rule = ParseRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  ASSERT_TRUE(rule.ok());
  // X in head and body must be the same variable.
  EXPECT_EQ(rule->head().terms[0].var(), rule->body()[0].terms[0].var());
  EXPECT_EQ(rule->var_count(), 3);
}

TEST(ParserTest, Constants) {
  auto rule = ParseRule("p(X) :- e(X, 42), f(-7, X).");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->body()[0].terms[1].is_const());
  EXPECT_EQ(rule->body()[0].terms[1].constant(), 42);
  EXPECT_EQ(rule->body()[1].terms[0].constant(), -7);
}

TEST(ParserTest, CommentsAndWhitespace) {
  auto program = ParseProgram(
      "% leading comment\n"
      "p(X,Y) :- e(X,Y).  // trailing\n"
      "\n"
      "e(1,2).\n");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules.size(), 1u);
  EXPECT_EQ(program->facts.size(), 1u);
}

TEST(ParserTest, FactsToDatabase) {
  auto program = ParseProgram("e(1,2). e(2,3). n(5).");
  ASSERT_TRUE(program.ok());
  auto db = program->FactsToDatabase();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Find("e")->size(), 2u);
  EXPECT_EQ(db->Find("n")->arity(), 1u);
}

TEST(ParserTest, FactArityConflictRejected) {
  auto program = ParseProgram("e(1,2). e(1).");
  ASSERT_TRUE(program.ok());
  auto db = program->FactsToDatabase();
  EXPECT_FALSE(db.ok());
}

TEST(ParserTest, NonGroundFactRejected) {
  auto program = ParseProgram("e(X,2).");
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto program = ParseProgram("p(X) :- \n  q(X)");
  ASSERT_FALSE(program.ok());
  // Missing final period on line 2.
  EXPECT_NE(program.status().message().find("2:"), std::string::npos)
      << program.status();
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseProgram("p(X) :- q(X) &").ok());
  EXPECT_FALSE(ParseProgram("p(X :- q(X).").ok());
  EXPECT_FALSE(ParseProgram("p() :- q(X).").ok());
  EXPECT_FALSE(ParseProgram(":- q(X).").ok());
}

TEST(ParserTest, ParseRuleRejectsPrograms) {
  EXPECT_FALSE(ParseRule("p(X) :- q(X). p(Y) :- r(Y).").ok());
  EXPECT_FALSE(ParseRule("e(1,2).").ok());
}

TEST(ParserTest, ParseLinearRule) {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  ASSERT_TRUE(lr.ok());
  EXPECT_EQ(lr->recursive_atom_index(), 0);
  EXPECT_EQ(lr->NonRecursiveAtomIndices(), std::vector<int>{1});
}

TEST(ParserTest, ParseLinearRuleRejectsNonLinear) {
  EXPECT_FALSE(ParseLinearRule("p(X,Y) :- p(X,Z), p(Z,Y).").ok());
  EXPECT_FALSE(ParseLinearRule("p(X,Y) :- e(X,Y).").ok());
}

TEST(PrinterTest, RoundTrip) {
  const std::string text = "p(X,Y) :- p(X,Z), e(Z,Y), g(Y).";
  auto rule = ParseRule(text);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(ToString(*rule), text);
  auto reparsed = ParseRule(ToString(*rule));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(ToString(*reparsed), text);
}

TEST(PrinterTest, ConstantsRoundTrip) {
  const std::string text = "p(X) :- e(X,42).";
  auto rule = ParseRule(text);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(ToString(*rule), text);
}

TEST(TraitsTest, RestrictedClassDetection) {
  auto good = ParseRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  ASSERT_TRUE(good.ok());
  RuleTraits traits = ComputeTraits(*good);
  EXPECT_TRUE(traits.linear);
  EXPECT_TRUE(traits.constant_free);
  EXPECT_TRUE(traits.range_restricted);
  EXPECT_FALSE(traits.repeated_head_vars);
  EXPECT_FALSE(traits.repeated_nonrecursive_predicates);
  EXPECT_TRUE(traits.InRestrictedClass());
}

TEST(TraitsTest, RepeatedPredicateLeavesRestrictedClass) {
  auto rule = ParseRule("p(X,Y) :- p(U,V), q(X), q(Y).");
  ASSERT_TRUE(rule.ok());
  RuleTraits traits = ComputeTraits(*rule);
  EXPECT_TRUE(traits.repeated_nonrecursive_predicates);
  EXPECT_FALSE(traits.InRestrictedClass());
}

TEST(TraitsTest, RepeatedHeadVars) {
  auto rule = ParseRule("p(X,X) :- p(X,Y), q(Y).");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(ComputeTraits(*rule).repeated_head_vars);
}

TEST(TraitsTest, NotRangeRestricted) {
  auto rule = ParseRule("p(X,Y) :- p(X,X), q(X).");
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(ComputeTraits(*rule).range_restricted);
}

TEST(TraitsTest, ConstantsDetected) {
  auto rule = ParseRule("p(X,Y) :- p(X,Z), e(Z,Y), f(3).");
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(ComputeTraits(*rule).constant_free);
}

TEST(AlignTest, RenamesSecondRuleOntoFirst) {
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto r2 = ParseLinearRule("p(A,B) :- p(U,B), f(A,U).");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  auto aligned = AlignRules(*r1, *r2);
  ASSERT_TRUE(aligned.ok()) << aligned.status();
  const Rule& renamed = aligned->second.rule();
  EXPECT_EQ(renamed.var_name(renamed.head().terms[0].var()), "X");
  EXPECT_EQ(renamed.var_name(renamed.head().terms[1].var()), "Y");
}

TEST(AlignTest, NondistinguishedNamesKeptDisjoint) {
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto r2 = ParseLinearRule("p(A,B) :- p(Z,B), f(A,Z).");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  auto aligned = AlignRules(*r1, *r2);
  ASSERT_TRUE(aligned.ok());
  // r2's Z collides with r1's Z and must have been renamed.
  const Rule& renamed = aligned->second.rule();
  for (VarId v = 0; v < renamed.var_count(); ++v) {
    if (!renamed.IsDistinguished(v)) {
      EXPECT_NE(renamed.var_name(v), "Z");
    }
  }
}

TEST(AlignTest, MismatchedHeadsRejected) {
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto r2 = ParseLinearRule("r(A,B) :- r(U,B), f(A,U).");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(AlignRules(*r1, *r2).ok());
}

}  // namespace
}  // namespace linrec
