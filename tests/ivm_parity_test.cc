// IVM parity suite: the delta engine must be observationally equal to
// recomputation. Apply(Δ) on a materialized view yields the relation a
// from-scratch evaluation over the updated inputs would; Retract undoes
// it (DRed); Apply-then-Retract of the same delta round-trips to the
// exact pre-update bytes; a fault injected mid-Apply rolls back to the
// exact pre-call bytes. All of it across strategies and worker counts,
// with real threads forced so single-core CI still runs the parallel
// rounds.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/parallel.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "ivm/view.h"
#include "workload/graphs.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto r = ParseLinearRule(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

void ForceRealThreads() { WorkerPool::OverrideThreadCapForTesting(16); }
void RestoreThreadCap() { WorkerPool::OverrideThreadCapForTesting(0); }

/// Rows in INSERTION order — the byte-level observable of a relation
/// (Sorted() would hide reordering).
std::vector<Tuple> Rows(const Relation& rel) {
  std::vector<Tuple> out;
  out.reserve(rel.size());
  for (TupleView t : rel) {
    out.emplace_back(std::vector<Value>(t.data(), t.data() + t.arity()));
  }
  return out;
}

Relation IdentitySeed(int nodes) {
  Relation q(2);
  for (int i = 0; i < nodes; ++i) q.Insert({i, i});
  return q;
}

/// Splits `edges` into a base part and `batches` update batches of
/// `batch_size` rows each (deterministic: insertion order).
struct EdgeStream {
  Relation base{2};
  std::vector<Relation> batches;
};
EdgeStream SplitEdges(const Relation& edges, int batches, int batch_size) {
  EdgeStream s;
  const std::size_t updates =
      static_cast<std::size_t>(batches) * static_cast<std::size_t>(batch_size);
  const std::size_t base_count = edges.size() - updates;
  std::size_t i = 0;
  for (TupleView t : edges) {
    if (i < base_count) {
      s.base.Insert(t);
    } else {
      const std::size_t b = (i - base_count) / batch_size;
      if (s.batches.size() <= b) s.batches.emplace_back(2);
      s.batches[b].Insert(t);
    }
    ++i;
  }
  return s;
}

/// The oracle: from-scratch closure of `rules` over edge relation `e`.
Relation Recompute(const std::vector<LinearRule>& rules, const Relation& e,
                   const Relation& q) {
  Database db;
  db.GetOrCreate("e", 2) = e;
  Engine engine(std::move(db));
  auto prepared = engine.Prepare(Query::Closure(rules));
  EXPECT_TRUE(prepared.ok()) << prepared.status();
  auto out = engine.Execute(prepared->Bind().BindSeed(q));
  EXPECT_TRUE(out.ok()) << out.status();
  return out->relation();
}

/// Materializes tc over the base edges, Applies each update batch, and
/// checks the maintained view equals the from-scratch closure after
/// every batch.
void RunApplyParity(int workers, std::vector<LinearRule> rules) {
  const int nodes = 40;
  EdgeStream s = SplitEdges(RandomGraph(nodes, 140, /*seed=*/11),
                            /*batches=*/4, /*batch_size=*/10);
  const Relation q = IdentitySeed(nodes);

  EngineOptions options;
  options.parallel_workers = workers;
  Database db;
  db.GetOrCreate("e", 2) = s.base;
  Engine engine(std::move(db), options);
  auto prepared = engine.Prepare(Query::Closure(rules));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto view = engine.Materialize(prepared->Bind().BindSeed(q), {"tc"});
  ASSERT_TRUE(view.ok()) << view.status();

  Relation all_edges = s.base;
  for (const Relation& batch : s.batches) {
    DeltaInsert delta;
    delta.param_inserts.emplace("e", batch);
    auto outcome = engine.Apply(*view, delta);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    all_edges.UnionWith(batch);

    const Relation* maintained = engine.db().Find("tc");
    ASSERT_NE(maintained, nullptr);
    EXPECT_EQ(*maintained, Recompute(rules, all_edges, q))
        << "workers=" << workers;
    // The database copy of the input tracked the stream.
    EXPECT_EQ(*engine.db().Find("e"), all_edges);
  }
  EXPECT_EQ(view->applies(), s.batches.size());
}

TEST(IvmApply, MatchesRecomputeSerial) {
  RunApplyParity(1, {LR("p(X,Y) :- p(X,Z), e(Z,Y).")});
}

TEST(IvmApply, MatchesRecomputeParallel) {
  ForceRealThreads();
  RunApplyParity(2, {LR("p(X,Y) :- p(X,Z), e(Z,Y).")});
  RunApplyParity(8, {LR("p(X,Y) :- p(X,Z), e(Z,Y).")});
  RestoreThreadCap();
}

TEST(IvmApply, MatchesRecomputeTwoRules) {
  // Left- and right-linear rules over the same input: both read "e", so
  // one parameter delta seeds delta runs of both.
  std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y)."),
                                   LR("p(X,Y) :- e(X,Z), p(Z,Y).")};
  RunApplyParity(1, rules);
  ForceRealThreads();
  RunApplyParity(2, rules);
  RestoreThreadCap();
}

TEST(IvmApply, SeedInsertsExtendTheClosure) {
  const std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(12);
  Engine engine(std::move(db));
  auto prepared = engine.Prepare(Query::Closure(rules));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  // Seed only half the nodes; the rest arrive as seed deltas.
  Relation q(2);
  for (int i = 0; i < 6; ++i) q.Insert({i, i});
  auto view = engine.Materialize(prepared->Bind().BindSeed(q), {"tc"});
  ASSERT_TRUE(view.ok()) << view.status();

  DeltaInsert delta;
  delta.seed_inserts.emplace_back(2);
  for (int i = 6; i < 12; ++i) delta.seed_inserts[0].Insert({i, i});
  auto outcome = engine.Apply(*view, delta);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->added, outcome->appended[0].second -
                                outcome->appended[0].first);

  EXPECT_EQ(*engine.db().Find("tc"),
            Recompute(rules, ChainGraph(12), IdentitySeed(12)));
  // The maintained seed absorbed the delta.
  EXPECT_EQ(view->seed(), IdentitySeed(12));
}

TEST(IvmApply, IdempotentOnDuplicateDelta) {
  const std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(10);
  Engine engine(std::move(db));
  auto prepared = engine.Prepare(Query::Closure(rules));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto view =
      engine.Materialize(prepared->Bind().BindSeed(IdentitySeed(10)), {"tc"});
  ASSERT_TRUE(view.ok()) << view.status();
  const std::vector<Tuple> before = Rows(*engine.db().Find("tc"));

  // Re-inserting tuples the input already holds derives nothing new and
  // leaves the view byte-identical (stale deltas are sound).
  DeltaInsert delta;
  Relation dup(2);
  dup.Insert({3, 4});
  dup.Insert({7, 8});
  delta.param_inserts.emplace("e", std::move(dup));
  auto outcome = engine.Apply(*view, delta);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->added, 0u);
  EXPECT_EQ(Rows(*engine.db().Find("tc")), before);
}

/// Retract parity: delete a batch of edges from a maintained view and
/// compare against the from-scratch closure over the remaining edges.
void RunRetractParity(int workers) {
  const std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};
  const int nodes = 36;
  const Relation edges = RandomGraph(nodes, 120, /*seed=*/23);
  const Relation q = IdentitySeed(nodes);

  EngineOptions options;
  options.parallel_workers = workers;
  Database db;
  db.GetOrCreate("e", 2) = edges;
  Engine engine(std::move(db), options);
  auto prepared = engine.Prepare(Query::Closure(rules));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto view = engine.Materialize(prepared->Bind().BindSeed(q), {"tc"});
  ASSERT_TRUE(view.ok()) << view.status();

  // Delete every fifth edge — dense enough that some damaged tuples have
  // alternative derivations (the re-derive half of DRed does real work).
  Relation remaining(2), dropped(2);
  std::size_t i = 0;
  for (TupleView t : edges) {
    if (i++ % 5 == 0) {
      dropped.Insert(t);
    } else {
      remaining.Insert(t);
    }
  }
  DeltaDelete delta;
  delta.param_deletes.emplace("e", dropped);
  auto outcome = engine.Retract(*view, delta);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  EXPECT_EQ(*engine.db().Find("tc"), Recompute(rules, remaining, q))
      << "workers=" << workers;
  EXPECT_EQ(*engine.db().Find("e"), remaining);
  EXPECT_EQ(view->retracts(), 1u);
}

TEST(IvmRetract, MatchesRecomputeSerial) { RunRetractParity(1); }

TEST(IvmRetract, MatchesRecomputeParallel) {
  ForceRealThreads();
  RunRetractParity(2);
  RunRetractParity(8);
  RestoreThreadCap();
}

/// The round-trip property (satellite): Apply(Δ) then Retract(Δ) must
/// restore the EXACT pre-update state — same tuples, same insertion
/// order, same seed — across worker counts. The inserted edges are fresh
/// (absent before), so DRed removes precisely what Apply added and the
/// survivor prefix is the untouched original closure.
void RunRoundTrip(int workers) {
  const std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};
  const int nodes = 30;
  EdgeStream s = SplitEdges(RandomGraph(nodes, 100, /*seed=*/5),
                            /*batches=*/1, /*batch_size=*/12);
  const Relation q = IdentitySeed(nodes);

  EngineOptions options;
  options.parallel_workers = workers;
  Database db;
  db.GetOrCreate("e", 2) = s.base;
  Engine engine(std::move(db), options);
  auto prepared = engine.Prepare(Query::Closure(rules));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto view = engine.Materialize(prepared->Bind().BindSeed(q), {"tc"});
  ASSERT_TRUE(view.ok()) << view.status();

  const std::vector<Tuple> closed_before = Rows(*engine.db().Find("tc"));
  const std::vector<Tuple> edges_before = Rows(*engine.db().Find("e"));
  const std::vector<Tuple> seed_before = Rows(view->seed());

  DeltaInsert ins;
  ins.param_inserts.emplace("e", s.batches[0]);
  auto applied = engine.Apply(*view, ins);
  ASSERT_TRUE(applied.ok()) << applied.status();

  DeltaDelete del;
  del.param_deletes.emplace("e", s.batches[0]);
  auto retracted = engine.Retract(*view, del);
  ASSERT_TRUE(retracted.ok()) << retracted.status();

  // Byte-identical round trip: contents AND insertion order.
  EXPECT_EQ(Rows(*engine.db().Find("tc")), closed_before)
      << "workers=" << workers;
  EXPECT_EQ(Rows(*engine.db().Find("e")), edges_before);
  EXPECT_EQ(Rows(view->seed()), seed_before);
  // And what Retract removed is exactly what Apply added.
  EXPECT_EQ(retracted->removed_count, applied->added);
}

TEST(IvmRoundTrip, ApplyThenRetractRestoresExactBytes) {
  RunRoundTrip(1);
  ForceRealThreads();
  RunRoundTrip(2);
  RunRoundTrip(8);
  RestoreThreadCap();
}

TEST(IvmJoint, ApplyAndRetractMatchRecompute) {
  // Alternating-color reachability: a genuine two-member SCC. Insert new
  // red edges (which are also reach_red seed tuples), compare against a
  // from-scratch joint closure, then retract them and compare again.
  auto w = MakeAlternatingReachability(30, 60, /*seed=*/9);
  ASSERT_TRUE(w.ok()) << w.status();

  // Hold back the last 8 red edges as the update.
  const Relation& red_all = *w->db.Find("red");
  Relation red_base(2), red_new(2);
  std::size_t i = 0;
  for (TupleView t : red_all) {
    (i++ + 8 >= red_all.size() ? red_new : red_base).Insert(t);
  }

  Database db;
  db.GetOrCreate("red", 2) = red_base;
  db.GetOrCreate("blue", 2) = *w->db.Find("blue");
  Engine engine(std::move(db));
  auto prepared =
      engine.Prepare(Query::JointClosure(w->members, w->rules));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  // Seeds mirror the workload's convention: reach_red = red, reach_blue =
  // blue — restricted to the base edges.
  std::vector<Relation> seeds = {red_base, *w->db.Find("blue")};
  auto view = engine.Materialize(prepared->Bind().BindSeeds(std::move(seeds)),
                                 {"reach_red", "reach_blue"});
  ASSERT_TRUE(view.ok()) << view.status();
  ASSERT_TRUE(view->joint());

  const std::vector<Tuple> red_closed_before =
      Rows(*engine.db().Find("reach_red"));
  const std::vector<Tuple> blue_closed_before =
      Rows(*engine.db().Find("reach_blue"));

  // Oracle over the FULL edge set.
  Database full;
  full.GetOrCreate("red", 2) = red_all;
  full.GetOrCreate("blue", 2) = *w->db.Find("blue");
  Engine oracle(std::move(full));
  auto oracle_prepared =
      oracle.Prepare(Query::JointClosure(w->members, w->rules));
  ASSERT_TRUE(oracle_prepared.ok()) << oracle_prepared.status();
  std::vector<Relation> full_seeds = {red_all, *w->db.Find("blue")};
  auto oracle_out = oracle.Execute(
      oracle_prepared->Bind().BindSeeds(std::move(full_seeds)));
  ASSERT_TRUE(oracle_out.ok()) << oracle_out.status();

  // Apply: new red edges are both a parameter delta and a reach_red seed
  // delta.
  DeltaInsert ins;
  ins.seed_inserts.emplace_back(red_new);
  ins.seed_inserts.emplace_back(2);
  ins.param_inserts.emplace("red", red_new);
  auto applied = engine.Apply(*view, ins);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*engine.db().Find("reach_red"), oracle_out->relations[0]);
  EXPECT_EQ(*engine.db().Find("reach_blue"), oracle_out->relations[1]);

  // Retract the same delta: the pre-apply closure returns. (Set equality,
  // not row order: the inserted edges gave some ORIGINAL tuples alternative
  // derivations, so DRed legitimately re-derives them at the end.)
  DeltaDelete del;
  del.seed_deletes.emplace_back(red_new);
  del.seed_deletes.emplace_back(2);
  del.param_deletes.emplace("red", red_new);
  auto retracted = engine.Retract(*view, del);
  ASSERT_TRUE(retracted.ok()) << retracted.status();
  Relation red_expected(2), blue_expected(2);
  for (const Tuple& t : red_closed_before) red_expected.Insert(t);
  for (const Tuple& t : blue_closed_before) blue_expected.Insert(t);
  EXPECT_EQ(*engine.db().Find("reach_red"), red_expected);
  EXPECT_EQ(*engine.db().Find("reach_blue"), blue_expected);
  EXPECT_EQ(*engine.db().Find("red"), red_base);
  EXPECT_EQ(view->seed(0), red_base);
}

TEST(IvmFault, MidApplyAbortRollsBackToExactBytes) {
  const std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(14);
  Engine engine(std::move(db));
  auto prepared = engine.Prepare(Query::Closure(rules));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto view =
      engine.Materialize(prepared->Bind().BindSeed(IdentitySeed(14)), {"tc"});
  ASSERT_TRUE(view.ok()) << view.status();

  const std::vector<Tuple> closed_before = Rows(*engine.db().Find("tc"));
  const std::vector<Tuple> edges_before = Rows(*engine.db().Find("e"));
  const std::vector<Tuple> seed_before = Rows(view->seed());

  Relation batch(2);
  batch.Insert({13, 0});  // closes the chain into a cycle: a large delta

  // Both injection points: before the resume (hit 1) and at commit
  // (hit 2). Each must leave the view, the input, and the maintained
  // seed byte-identical — contents and insertion order.
  for (std::uint64_t nth : {1u, 2u}) {
    ScopedFault fault(FaultSite::kIvmApply, nth);
    DeltaInsert delta;
    delta.param_inserts.emplace("e", batch);
    auto outcome = engine.Apply(*view, delta);
    ASSERT_FALSE(outcome.ok()) << "fault hit " << nth << " did not fire";
    EXPECT_EQ(outcome.status().code(), StatusCode::kInternal);
    EXPECT_EQ(Rows(*engine.db().Find("tc")), closed_before) << nth;
    EXPECT_EQ(Rows(*engine.db().Find("e")), edges_before) << nth;
    EXPECT_EQ(Rows(view->seed()), seed_before) << nth;
    EXPECT_EQ(view->applies(), 0u);
  }

  // Disarmed, the identical Apply succeeds and matches recompute.
  DeltaInsert delta;
  delta.param_inserts.emplace("e", batch);
  auto outcome = engine.Apply(*view, delta);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  Relation all = ChainGraph(14);
  all.UnionWith(batch);
  EXPECT_EQ(*engine.db().Find("tc"), Recompute(rules, all, IdentitySeed(14)));
}

TEST(IvmValidation, RejectsMalformedDeltas) {
  const std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(6);
  Engine engine(std::move(db));
  auto prepared = engine.Prepare(Query::Closure(rules));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto view =
      engine.Materialize(prepared->Bind().BindSeed(IdentitySeed(6)), {"tc"});
  ASSERT_TRUE(view.ok()) << view.status();
  const std::vector<Tuple> before = Rows(*engine.db().Find("tc"));

  // Wrong-arity parameter delta.
  {
    DeltaInsert delta;
    Relation bad(3);
    bad.Insert({1, 2, 3});
    delta.param_inserts.emplace("e", std::move(bad));
    auto outcome = engine.Apply(*view, delta);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  }
  // Inserting into the derived member itself.
  {
    DeltaInsert delta;
    Relation bad(2);
    bad.Insert({1, 2});
    delta.param_inserts.emplace("tc", std::move(bad));
    auto outcome = engine.Apply(*view, delta);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  }
  // Wrong seed_inserts shape.
  {
    DeltaInsert delta;
    delta.seed_inserts.emplace_back(2);
    delta.seed_inserts.emplace_back(2);
    auto outcome = engine.Apply(*view, delta);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  }
  // Default-constructed view.
  {
    MaterializedView dangling;
    DeltaInsert delta;
    auto outcome = engine.Apply(dangling, delta);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  }
  // Nothing moved.
  EXPECT_EQ(Rows(*engine.db().Find("tc")), before);
  EXPECT_EQ(view->applies(), 0u);
}

TEST(IvmMaterialize, RejectsSelectedQueries) {
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(6);
  Engine engine(std::move(db));
  auto prepared = engine.Prepare(
      Query::Closure({LR("p(X,Y) :- p(X,Z), e(Z,Y).")}).Select(Selection{0, 3}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  Relation q(2);
  q.Insert({3, 3});
  auto view = engine.Materialize(prepared->Bind().BindSeed(q), {"tc"});
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace linrec
