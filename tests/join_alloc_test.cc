// Verifies the acceptance contract of the flat join kernel: ApplyRule's
// inner probe loop performs ZERO heap allocations per candidate tuple.
//
// Strategy: this binary replaces global operator new with a counting
// wrapper, then measures the allocation count of one warm ApplyRule call
// (indexes cached, output pre-reserved) at two very different input sizes.
// The per-call compile phase allocates a small constant number of vectors;
// if the per-candidate path allocated anything, the larger input would
// allocate strictly more.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "datalog/parser.h"
#include "eval/apply.h"
#include "eval/index_cache.h"
#include "eval/selection.h"
#include "workload/graphs.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace linrec {
namespace {

/// Allocations of one warm ApplyRule pass: Δ = n self-loops joined against
/// a chain of n edges, with the edge index already cached and the output
/// relation pre-sized.
std::size_t WarmApplyAllocations(int n) {
  auto rule = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  EXPECT_TRUE(rule.ok());

  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(n);
  Relation delta(2);
  for (int i = 0; i < n; ++i) delta.Insert({i, i});

  ApplyOptions options;
  options.overrides[rule->recursive_atom_index()] = &delta;
  options.first_atom = rule->recursive_atom_index();

  IndexCache cache;
  Relation warm(2);
  Status s = ApplyRule(rule->rule(), db, options, &warm, nullptr, &cache);
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(warm.size(), static_cast<std::size_t>(n - 1));

  Relation out(2);
  out.Reserve(static_cast<std::size_t>(2 * n));
  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  s = ApplyRule(rule->rule(), db, options, &out, nullptr, &cache);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(out.size(), static_cast<std::size_t>(n - 1));
  return after - before;
}

TEST(JoinAllocTest, ProbeLoopAllocatesNothingPerCandidate) {
  std::size_t small = WarmApplyAllocations(32);
  std::size_t large = WarmApplyAllocations(512);
  // 16x the candidates, identical allocation count: everything the kernel
  // heap-allocates belongs to the per-call compile phase.
  EXPECT_EQ(small, large) << "per-candidate path allocates";
  // And the compile phase itself stays a small constant.
  EXPECT_LE(small, 64u);
}

/// Allocations of one ApplySelection over a relation of `rows` rows in
/// which exactly `matches` rows carry the selected value.
std::size_t SelectionAllocations(int rows, int matches) {
  Relation input(2);
  for (int i = 0; i < rows; ++i) {
    input.Insert({i < matches ? 42 : i + 100, i});
  }
  Selection sigma{0, 42};
  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  Relation out = ApplySelection(input, sigma);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(matches));
  return after - before;
}

TEST(JoinAllocTest, SelectiveScanAllocatesPerMatchNotPerInputRow) {
  // The columnar ApplySelection counts matches first and reserves exactly,
  // so a 16x larger input with the same match count allocates identically:
  // O(matches), not O(input).
  std::size_t small = SelectionAllocations(512, 16);
  std::size_t large = SelectionAllocations(8192, 16);
  EXPECT_EQ(small, large) << "selection allocates per input row";
  // And the absolute count is the output relation's few buffers.
  EXPECT_LE(small, 8u);
}

TEST(JoinAllocTest, CountingHookIsLive) {
  // Guard against the override silently not linking: an explicit heap
  // allocation must be observed.
  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  auto* p = new std::vector<int>(10);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  delete p;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace linrec
