// Verifies the acceptance contract of the flat join kernel: ApplyRule's
// inner probe loop performs ZERO heap allocations per candidate tuple —
// and, strategy by strategy, that the steady-state rounds of every
// closure allocate nothing beyond amortized capacity growth.
//
// Strategy: this binary replaces global operator new (the plain AND the
// aligned overloads — the Relation pool allocates through
// std::align_val_t) with a counting wrapper, then measures the allocation
// count of one warm ApplyRule call (indexes cached, output pre-reserved)
// at two very different input sizes. The per-call compile phase allocates
// a small constant number of vectors; if the per-candidate path allocated
// anything, the larger input would allocate strictly more. The closure
// tests apply the same doubling argument per round: a strategy whose
// steady-state round allocated even once would grow its count by the
// extra rounds, so the size-doubled delta is pinned far below that.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "algebra/closure.h"
#include "datalog/parser.h"
#include "eval/apply.h"
#include "eval/fixpoint.h"
#include "eval/index_cache.h"
#include "eval/joint.h"
#include "eval/selection.h"
#include "separability/algorithm.h"
#include "workload/databases.h"
#include "workload/graphs.h"
#include "workload/rulegen.h"

namespace {
std::atomic<std::size_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace linrec {
namespace {

/// Allocations of one warm ApplyRule pass: Δ = n self-loops joined against
/// a chain of n edges, with the edge index already cached and the output
/// relation pre-sized.
std::size_t WarmApplyAllocations(int n) {
  auto rule = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  EXPECT_TRUE(rule.ok());

  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(n);
  Relation delta(2);
  for (int i = 0; i < n; ++i) delta.Insert({i, i});

  ApplyOptions options;
  options.overrides[rule->recursive_atom_index()] = &delta;
  options.first_atom = rule->recursive_atom_index();

  IndexCache cache;
  Relation warm(2);
  Status s = ApplyRule(rule->rule(), db, options, &warm, nullptr, &cache);
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(warm.size(), static_cast<std::size_t>(n - 1));

  Relation out(2);
  out.Reserve(static_cast<std::size_t>(2 * n));
  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  s = ApplyRule(rule->rule(), db, options, &out, nullptr, &cache);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(out.size(), static_cast<std::size_t>(n - 1));
  return after - before;
}

TEST(JoinAllocTest, ProbeLoopAllocatesNothingPerCandidate) {
  std::size_t small = WarmApplyAllocations(32);
  std::size_t large = WarmApplyAllocations(512);
  // 16x the candidates, identical allocation count: everything the kernel
  // heap-allocates belongs to the per-call compile phase.
  EXPECT_EQ(small, large) << "per-candidate path allocates";
  // And the compile phase itself stays a small constant.
  EXPECT_LE(small, 64u);
}

/// Allocations of one ApplySelection over a relation of `rows` rows in
/// which exactly `matches` rows carry the selected value.
std::size_t SelectionAllocations(int rows, int matches) {
  Relation input(2);
  for (int i = 0; i < rows; ++i) {
    input.Insert({i < matches ? 42 : i + 100, i});
  }
  Selection sigma{0, 42};
  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  Relation out = ApplySelection(input, sigma);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(matches));
  return after - before;
}

TEST(JoinAllocTest, SelectiveScanAllocatesPerMatchNotPerInputRow) {
  // The columnar ApplySelection counts matches first and reserves exactly,
  // so a 16x larger input with the same match count allocates identically:
  // O(matches), not O(input).
  std::size_t small = SelectionAllocations(512, 16);
  std::size_t large = SelectionAllocations(8192, 16);
  EXPECT_EQ(small, large) << "selection allocates per input row";
  // And the absolute count is the output relation's few buffers.
  EXPECT_LE(small, 8u);
}

// ---------------------------------------------------------------------------
// Steady-state closure rounds, strategy by strategy.
//
// Each test runs one full closure at two input sizes whose round counts
// differ by dozens to hundreds, and pins the allocation-count delta to a
// small constant. Geometric pool growth costs O(log n) reallocations per
// container, so the doubled input may legitimately allocate a few more
// times — but one allocation per steady-state round would blow the bound
// by the number of added rounds.

constexpr std::ptrdiff_t kGrowthSlack = 32;

/// Allocations of one full `closure(rules, db, q)` call: chain of n nodes,
/// q seeded with n self-loops — the closure is the full upper-triangle
/// reachability, reached after ~n rounds.
template <typename Closure>
std::size_t ChainClosureAllocations(int n, const Closure& closure) {
  auto rule = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  EXPECT_TRUE(rule.ok());
  std::vector<LinearRule> rules{*rule};
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(n);
  Relation q(2);
  for (int i = 0; i < n; ++i) q.Insert({i, i});

  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  Result<Relation> out = closure(rules, db, q);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out->size(),
            static_cast<std::size_t>(n) * (n + 1) / 2);
  return after - before;
}

TEST(ClosureAllocTest, SemiNaiveSteadyStateRoundsAllocateNothing) {
  auto run = [](const std::vector<LinearRule>& rules, const Database& db,
                const Relation& q) { return SemiNaiveClosure(rules, db, q); };
  std::size_t small = ChainClosureAllocations(128, run);
  std::size_t large = ChainClosureAllocations(256, run);
  EXPECT_LE(static_cast<std::ptrdiff_t>(large - small), kGrowthSlack)
      << "semi-naive rounds allocate: " << small << " -> " << large;
}

TEST(ClosureAllocTest, NaiveSteadyStateRoundsAllocateNothing) {
  auto run = [](const std::vector<LinearRule>& rules, const Database& db,
                const Relation& q) { return NaiveClosure(rules, db, q); };
  std::size_t small = ChainClosureAllocations(48, run);
  std::size_t large = ChainClosureAllocations(96, run);
  EXPECT_LE(static_cast<std::ptrdiff_t>(large - small), kGrowthSlack)
      << "naive rounds allocate: " << small << " -> " << large;
}

TEST(ClosureAllocTest, PowerSumSteadyStateRoundsAllocateNothing) {
  auto run = [](const std::vector<LinearRule>& rules, const Database& db,
                const Relation& q) {
    // q holds one self-loop per chain node, so q.size() powers suffice.
    return PowerSum(rules, db, q, static_cast<int>(q.size()) + 1);
  };
  std::size_t small = ChainClosureAllocations(64, run);
  std::size_t large = ChainClosureAllocations(128, run);
  EXPECT_LE(static_cast<std::ptrdiff_t>(large - small), kGrowthSlack)
      << "power-sum rounds allocate: " << small << " -> " << large;
}

/// Allocations of one DecomposedClosure over same-generation with each rule
/// in its own group (the commuting pair of Example 5.2), serial.
std::size_t DecomposedAllocations(int width) {
  SameGenerationWorkload w = MakeSameGeneration(5, width, 2, 7);
  std::vector<LinearRule> rules = SameGenerationRules();
  std::vector<std::vector<LinearRule>> groups = {{rules[0]}, {rules[1]}};

  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  Result<Relation> out = DecomposedClosure(groups, w.db, w.q, nullptr,
                                           nullptr, /*workers=*/1);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(out.ok());
  EXPECT_GT(out->size(), 0u);
  return after - before;
}

TEST(ClosureAllocTest, DecomposedSteadyStateRoundsAllocateNothing) {
  std::size_t small = DecomposedAllocations(8);
  std::size_t large = DecomposedAllocations(16);
  EXPECT_LE(static_cast<std::ptrdiff_t>(large - small), kGrowthSlack)
      << "decomposed rounds allocate: " << small << " -> " << large;
}

/// Allocations of one SeparableClosure A*(σ(B* q)) over same-generation.
/// The up-front commutativity oracle allocates, but a per-call constant
/// amount — the doubling argument still pins the round path.
std::size_t SeparableAllocations(int width) {
  auto r1 = ParseLinearRule("p(X,Y) :- p(X,V), down(V,Y).");
  auto r2 = ParseLinearRule("p(X,Y) :- p(U,Y), up(X,U).");
  EXPECT_TRUE(r1.ok() && r2.ok());
  std::vector<LinearRule> a_rules{*r1};
  std::vector<LinearRule> b_rules{*r2};
  SameGenerationWorkload w = MakeSameGeneration(5, width, 2, 11);
  Selection sigma{0, w.q.Sorted().front()[0]};

  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  Result<Relation> out =
      SeparableClosure(a_rules, b_rules, sigma, w.db, w.q);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(out.ok());
  EXPECT_GT(out->size(), 0u);
  return after - before;
}

TEST(ClosureAllocTest, SeparableSteadyStateRoundsAllocateNothing) {
  std::size_t small = SeparableAllocations(8);
  std::size_t large = SeparableAllocations(16);
  EXPECT_LE(static_cast<std::ptrdiff_t>(large - small), kGrowthSlack)
      << "separable rounds allocate: " << small << " -> " << large;
}

/// Allocations of one JointSemiNaiveClosure over the even/odd parity chain:
/// n rounds whose Δs alternate between the two members.
std::size_t JointAllocations(int n) {
  Result<JointWorkload> w = MakeEvenOddChain(n);
  EXPECT_TRUE(w.ok());

  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  Result<std::vector<Relation>> out =
      JointSemiNaiveClosure(w->members, w->rules, w->db, w->seeds);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ((*out)[0].size() + (*out)[1].size(), static_cast<std::size_t>(n));
  return after - before;
}

TEST(ClosureAllocTest, JointSteadyStateRoundsAllocateNothing) {
  std::size_t small = JointAllocations(128);
  std::size_t large = JointAllocations(256);
  EXPECT_LE(static_cast<std::ptrdiff_t>(large - small), kGrowthSlack)
      << "joint rounds allocate: " << small << " -> " << large;
}

TEST(JoinAllocTest, CountingHookIsLive) {
  // Guard against the override silently not linking: an explicit heap
  // allocation must be observed.
  std::size_t before = g_allocations.load(std::memory_order_relaxed);
  auto* p = new std::vector<int>(10);
  std::size_t after = g_allocations.load(std::memory_order_relaxed);
  delete p;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace linrec
