// End-to-end reproduction of every worked example and figure in the paper
// (see DESIGN.md §1.2 and EXPERIMENTS.md). Each test states the paper's
// claim and verifies it through the public API.

#include <gtest/gtest.h>

#include "algebra/closure.h"
#include "analysis/rule_analysis.h"
#include "commutativity/definitional.h"
#include "commutativity/oracle.h"
#include "cq/compose.h"
#include "cq/homomorphism.h"
#include "datalog/parser.h"
#include "redundancy/analyze.h"
#include "redundancy/factorize.h"
#include "separability/separable.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

const VarClass& ClassOf(const RuleAnalysis& a, const std::string& name) {
  const Rule& r = a.rule().rule();
  for (VarId v = 0; v < r.var_count(); ++v) {
    if (r.var_name(v) == name) return a.classes().Of(v);
  }
  ADD_FAILURE() << "no variable " << name;
  static VarClass dummy;
  return dummy;
}

// ---------------------------------------------------------------------------
// Figure 1 / Example 5.1: variable classification.
TEST(PaperFigures, F1_Example51_Classification) {
  auto a = RuleAnalysis::Compute(
      LR("p(U,V,W,X,Y,Z) :- p(V,U,W,Y,Y,Z), q(W,X), rr(X,Y)."));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(ClassOf(*a, "Z").Describe(), "free 1-persistent");
  EXPECT_EQ(ClassOf(*a, "W").Describe(), "link 1-persistent");
  EXPECT_EQ(ClassOf(*a, "Y").Describe(), "link 1-persistent");
  EXPECT_EQ(ClassOf(*a, "U").Describe(), "free 2-persistent");
  EXPECT_EQ(ClassOf(*a, "V").Describe(), "free 2-persistent");
  EXPECT_TRUE(ClassOf(*a, "X").IsGeneral());
}

// ---------------------------------------------------------------------------
// Figure 2: three augmented bridges with the paper's narrow and wide rules
// (verified in detail in narrow_wide_test; here: the partition).
TEST(PaperFigures, F2_AugmentedBridges) {
  auto a = RuleAnalysis::Compute(
      LR("p(U,W,X,Y,Z) :- p(U,U,U,Y,Y), q(U,X,Y), rr(W), s(X), t(Z)."));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->commutativity_bridges().size(), 3u);
}

// ---------------------------------------------------------------------------
// Figure 3 / Example 5.2: the two linear forms of transitive closure
// commute; their composite is the same-generation rule.
TEST(PaperFigures, F3_Example52_TransitiveClosureForms) {
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  auto report = CheckCommutativity(r1, r2);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->commute);
  EXPECT_TRUE(report->syntactic_holds);

  auto c12 = Compose(r1, r2);
  auto c21 = Compose(r2, r1);
  ASSERT_TRUE(c12.ok());
  ASSERT_TRUE(c21.ok());
  auto sg = ParseLinearRule("p(X,Y) :- p(U,V), up(X,U), down(V,Y).");
  ASSERT_TRUE(sg.ok());
  EXPECT_TRUE(AreEquivalent(c12->rule(), sg->rule()));
  EXPECT_TRUE(AreEquivalent(c21->rule(), sg->rule()));
}

// ---------------------------------------------------------------------------
// Figure 4 / Example 5.3: the 3-ary pair commutes; both composites equal the
// paper's rule.
TEST(PaperFigures, F4_Example53_TernaryPair) {
  LinearRule r1 = LR("p(X,Y,Z) :- p(U,Y,Z), q(X,Y).");
  LinearRule r2 = LR("p(X,Y,Z) :- p(X,Y,U), rr(Z,Y).");
  auto report = CheckCommutativity(r1, r2);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->commute);
  EXPECT_TRUE(report->syntactic_holds);

  auto c12 = Compose(r1, r2);
  ASSERT_TRUE(c12.ok());
  auto expected = ParseLinearRule("p(X,Y,Z) :- p(U,Y,V), q(X,Y), rr(Z,Y).");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(AreEquivalent(c12->rule(), expected->rule()));
}

// ---------------------------------------------------------------------------
// Figure 5 / Example 5.4: commuting pair for which the syntactic condition
// fails — sufficiency is strict outside the restricted class.
TEST(PaperFigures, F5_Example54_ConditionNotNecessary) {
  LinearRule r1 = LR("p(X,Y) :- p(Y,W), q(X).");
  LinearRule r2 = LR("p(X,Y) :- p(U,V), q(X), q(Y).");
  auto syntactic = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(syntactic.ok());
  EXPECT_FALSE(syntactic->condition_holds);
  auto exact = DefinitionalCommute(r1, r2);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(*exact);

  // Both composites isomorphic to p(X,Y) :- p(U,W'), q(Y), q(W), q(X)
  // (paper text, modulo renaming).
  auto c12 = Compose(r1, r2);
  ASSERT_TRUE(c12.ok());
  auto expected =
      ParseLinearRule("p(X,Y) :- p(A,B), q(Y), q(W), q(X).");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(AreEquivalent(c12->rule(), expected->rule()));
}

// ---------------------------------------------------------------------------
// Figure 6 / Example 6.1: cheap is recursively redundant.
TEST(PaperFigures, F6_Example61_CheapRedundant) {
  LinearRule r = LR("buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).");
  auto a = RuleAnalysis::Compute(r);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(ClassOf(*a, "Y").IsLink1Persistent());
  EXPECT_TRUE(ClassOf(*a, "X").IsGeneral());

  auto report = AnalyzeRedundancy(r);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->redundant_predicates.size(), 1u);
  EXPECT_EQ(report->redundant_predicates[0], "cheap");
}

// ---------------------------------------------------------------------------
// Figures 7-8 / Example 6.2: factorization A² = BC², B and C² commute.
TEST(PaperFigures, F7_F8_Example62_Factorization) {
  LinearRule a = LR("p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
  auto analysis = RuleAnalysis::Compute(a);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(ClassOf(*analysis, "W").Describe(), "link 2-persistent");
  EXPECT_EQ(ClassOf(*analysis, "X").Describe(), "link 2-persistent");
  EXPECT_EQ(ClassOf(*analysis, "Y").ray_depth, 1);

  auto f = FactorFirstRedundant(a);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->L, 2);
  EXPECT_TRUE(f->product_verified);
  EXPECT_TRUE(f->swap_verified);

  // Paper's A²: P(w,x,y,z) :- P(w,x,w,u'), Q(w,u'), R(w,x), S(u',u),
  //                           Q(x,u), R(x,y), S(u,z).
  auto expected_a2 = ParseLinearRule(
      "p(W,X,Y,Z) :- p(W,X,W,U1), q(W,U1), rr(W,X), s(U1,U), q(X,U), "
      "rr(X,Y), s(U,Z).");
  ASSERT_TRUE(expected_a2.ok());
  EXPECT_TRUE(AreEquivalent(f->AL.rule(), expected_a2->rule()));

  // Figure 8: B and C² commute (checked syntactically — both restricted).
  auto commute = Commute(f->B, f->CL);
  ASSERT_TRUE(commute.ok());
  EXPECT_TRUE(*commute);
}

// ---------------------------------------------------------------------------
// Figure 9 / Example 6.3: BC² ≠ C²B but C²(BC²) = C²(C²B).
TEST(PaperFigures, F9_Example63_SwapOnly) {
  LinearRule a = LR("p(W,X,Y,Z) :- p(X,W,X,U), q(Y,U), rr(X,Y), s(U,Z).");
  auto f = FactorFirstRedundant(a);
  ASSERT_TRUE(f.ok());
  auto bc = Compose(f->B, f->CL);
  auto cb = Compose(f->CL, f->B);
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_FALSE(AreEquivalent(bc->rule(), cb->rule()));
  EXPECT_TRUE(f->swap_verified);
}

// ---------------------------------------------------------------------------
// Theorem 6.2: separable ⇒ commutative, strictly.
TEST(PaperTheorems, T62_SeparableStrictlyInsideCommutative) {
  LinearRule sep1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule sep2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  auto sep = CheckSeparable(sep1, sep2);
  ASSERT_TRUE(sep.ok());
  EXPECT_TRUE(sep->separable);
  auto commute = Commute(sep1, sep2);
  ASSERT_TRUE(commute.ok());
  EXPECT_TRUE(*commute);

  // Example 5.3: commutative but not separable.
  LinearRule c1 = LR("p(X,Y,Z) :- p(U,Y,Z), q(X,Y).");
  LinearRule c2 = LR("p(X,Y,Z) :- p(X,Y,U), rr(Z,Y).");
  auto not_sep = CheckSeparable(c1, c2);
  ASSERT_TRUE(not_sep.ok());
  EXPECT_FALSE(not_sep->separable);
  auto commute2 = Commute(c1, c2);
  ASSERT_TRUE(commute2.ok());
  EXPECT_TRUE(*commute2);
}

}  // namespace
}  // namespace linrec
