#include "analysis/alpha_graph.h"

#include <gtest/gtest.h>

#include "analysis/dot.h"
#include "analysis/rule_analysis.h"
#include "datalog/parser.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

int CountArcs(const AlphaGraph& g, AlphaArc::Kind kind) {
  int n = 0;
  for (const AlphaArc& arc : g.arcs()) {
    if (arc.kind == kind) ++n;
  }
  return n;
}

TEST(AlphaGraphTest, TransitiveClosureShape) {
  auto g = AlphaGraph::Build(LR("p(X,Y) :- p(X,Z), e(Z,Y)."));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->node_count(), 3);
  // Static: e gives one arc Z—Y. Dynamic: X->X and Z->Y.
  EXPECT_EQ(CountArcs(*g, AlphaArc::Kind::kStatic), 1);
  EXPECT_EQ(CountArcs(*g, AlphaArc::Kind::kDynamic), 2);
}

TEST(AlphaGraphTest, UnaryPredicateGivesSelfArc) {
  auto g = AlphaGraph::Build(LR("p(X) :- p(X), g(X)."));
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->arcs().size(), 2u);
  const AlphaArc& st = g->arcs()[0];
  EXPECT_EQ(st.kind, AlphaArc::Kind::kStatic);
  EXPECT_EQ(st.u, st.v);
}

TEST(AlphaGraphTest, TernaryPredicateGivesConsecutiveArcs) {
  auto g = AlphaGraph::Build(LR("p(X,Y) :- p(X,Y), q(X,W,Y)."));
  ASSERT_TRUE(g.ok());
  // q(X,W,Y): arcs X—W, W—Y.
  EXPECT_EQ(CountArcs(*g, AlphaArc::Kind::kStatic), 2);
}

TEST(AlphaGraphTest, DynamicArcsFollowPositions) {
  LinearRule rule = LR("p(X,Y) :- p(Y,Z), e(Z,X).");
  auto g = AlphaGraph::Build(rule);
  ASSERT_TRUE(g.ok());
  const Rule& r = rule.rule();
  int dynamic_found = 0;
  for (const AlphaArc& arc : g->arcs()) {
    if (!arc.is_dynamic()) continue;
    ++dynamic_found;
    // position 0: Y -> X; position 1: Z -> Y.
    if (arc.position == 0) {
      EXPECT_EQ(r.var_name(arc.u), "Y");
      EXPECT_EQ(r.var_name(arc.v), "X");
    } else {
      EXPECT_EQ(r.var_name(arc.u), "Z");
      EXPECT_EQ(r.var_name(arc.v), "Y");
    }
  }
  EXPECT_EQ(dynamic_found, 2);
}

TEST(AlphaGraphTest, RejectsConstants) {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y), f(3).");
  ASSERT_TRUE(lr.ok());
  EXPECT_FALSE(AlphaGraph::Build(*lr).ok());
}

TEST(AlphaGraphTest, RejectsRepeatedHeadVars) {
  auto lr = ParseLinearRule("p(X,X) :- p(X,Y), e(Y,X).");
  ASSERT_TRUE(lr.ok());
  EXPECT_FALSE(AlphaGraph::Build(*lr).ok());
}

TEST(AlphaGraphTest, IncidenceLists) {
  auto rule = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto g = AlphaGraph::Build(rule);
  ASSERT_TRUE(g.ok());
  // Z participates in the static arc and one dynamic arc.
  VarId z = -1;
  for (VarId v = 0; v < rule.rule().var_count(); ++v) {
    if (rule.rule().var_name(v) == "Z") z = v;
  }
  ASSERT_GE(z, 0);
  EXPECT_EQ(g->IncidentArcs(z).size(), 2u);
}

TEST(DotExportTest, ContainsNodesAndStyles) {
  auto analysis = RuleAnalysis::Compute(LR("p(X,Y) :- p(X,Z), e(Z,Y)."));
  ASSERT_TRUE(analysis.ok());
  std::string dot = ToDot(*analysis);
  EXPECT_NE(dot.find("digraph alpha"), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);    // dynamic arc
  EXPECT_NE(dot.find("label=\"e\""), std::string::npos);   // static arc label
  EXPECT_NE(dot.find("\"X\""), std::string::npos);
}

TEST(AsciiReportTest, MentionsClassesAndBridges) {
  auto analysis = RuleAnalysis::Compute(LR("p(X,Y) :- p(X,Z), e(Z,Y)."));
  ASSERT_TRUE(analysis.ok());
  std::string report = AsciiReport(*analysis);
  EXPECT_NE(report.find("free 1-persistent"), std::string::npos);
  EXPECT_NE(report.find("bridge"), std::string::npos);
}

}  // namespace
}  // namespace linrec
