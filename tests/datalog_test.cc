// Unit tests for the core IR: Term, Atom, Rule, RuleBuilder, LinearRule.

#include "datalog/rule.h"

#include <gtest/gtest.h>

#include "datalog/ast.h"
#include "datalog/parser.h"
#include "datalog/printer.h"

namespace linrec {
namespace {

TEST(TermTest, VariableAndConstant) {
  Term v = Term::MakeVar(3);
  Term c = Term::MakeConst(42);
  EXPECT_TRUE(v.is_var());
  EXPECT_FALSE(v.is_const());
  EXPECT_EQ(v.var(), 3);
  EXPECT_TRUE(c.is_const());
  EXPECT_EQ(c.constant(), 42);
  EXPECT_NE(v, c);
  EXPECT_EQ(v, Term::MakeVar(3));
  EXPECT_NE(Term::MakeVar(3), Term::MakeVar(4));
  EXPECT_NE(Term::MakeConst(1), Term::MakeConst(2));
}

TEST(AtomTest, Equality) {
  Atom a{"e", {Term::MakeVar(0), Term::MakeVar(1)}};
  Atom b{"e", {Term::MakeVar(0), Term::MakeVar(1)}};
  Atom c{"f", {Term::MakeVar(0), Term::MakeVar(1)}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.arity(), 2u);
}

TEST(RuleBuilderTest, InternsVariables) {
  RuleBuilder b;
  VarId x1 = b.Var("X");
  VarId x2 = b.Var("X");
  VarId y = b.Var("Y");
  EXPECT_EQ(x1, x2);
  EXPECT_NE(x1, y);
  EXPECT_TRUE(b.HasVar("X"));
  EXPECT_FALSE(b.HasVar("Z"));
}

TEST(RuleBuilderTest, FreshVarAvoidsCollisions) {
  RuleBuilder b;
  b.Var("W");
  VarId f1 = b.FreshVar("W");
  VarId f2 = b.FreshVar("W");
  EXPECT_NE(f1, f2);
  EXPECT_NE(b.Var("W"), f1);
}

TEST(RuleBuilderTest, BuildsValidRule) {
  RuleBuilder b;
  b.SetHeadVars("p", {"X", "Y"});
  b.AddBodyVars("p", {"X", "Z"});
  b.AddBodyVars("e", {"Z", "Y"});
  auto rule = b.Build();
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(ToString(*rule), "p(X,Y) :- p(X,Z), e(Z,Y).");
}

TEST(RuleTest, DistinguishedFlags) {
  auto rule = ParseRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  ASSERT_TRUE(rule.ok());
  int distinguished = 0;
  for (VarId v = 0; v < rule->var_count(); ++v) {
    if (rule->IsDistinguished(v)) ++distinguished;
  }
  EXPECT_EQ(distinguished, 2);
}

TEST(RuleTest, HeadPositionsOf) {
  auto rule = ParseRule("p(X,Y,X) :- q(X,Y).");
  ASSERT_TRUE(rule.ok());
  VarId x = rule->head().terms[0].var();
  EXPECT_EQ(rule->HeadPositionsOf(x), (std::vector<int>{0, 2}));
  VarId y = rule->head().terms[1].var();
  EXPECT_EQ(rule->HeadPositionsOf(y), (std::vector<int>{1}));
}

TEST(RuleTest, TotalArgumentPositions) {
  auto rule = ParseRule("p(X,Y) :- p(X,Z), e(Z,Y), g(X).");
  ASSERT_TRUE(rule.ok());
  // head 2 + p 2 + e 2 + g 1 = 7.
  EXPECT_EQ(rule->TotalArgumentPositions(), 7u);
}

TEST(RuleTest, ValidateCatchesArityConflicts) {
  RuleBuilder b;
  b.SetHeadVars("p", {"X"});
  b.AddBodyVars("e", {"X"});
  b.AddBodyVars("e", {"X", "X"});
  auto rule = b.Build();
  EXPECT_FALSE(rule.ok());
}

TEST(LinearRuleTest, IdentifiesRecursiveAtom) {
  auto lr = ParseLinearRule("p(X,Y) :- e(X,Z), p(Z,W), f(W,Y).");
  ASSERT_TRUE(lr.ok());
  EXPECT_EQ(lr->recursive_atom_index(), 1);
  EXPECT_EQ(lr->recursive_atom().predicate, "p");
  EXPECT_EQ(lr->NonRecursiveAtomIndices(), (std::vector<int>{0, 2}));
  EXPECT_EQ(lr->arity(), 2u);
}

TEST(LinearRuleTest, ArityMismatchRejectedAtValidation) {
  // The recursive predicate with two arities is already rejected by
  // Rule::Validate (predicate arity consistency), so the parse fails.
  auto rule = ParseRule("p(X,Y) :- p(X), e(X,Y).");
  EXPECT_FALSE(rule.ok());
}

TEST(PrinterTest, BodylessRule) {
  RuleBuilder b;
  b.SetHeadVars("p", {"X"});
  b.AddBodyVars("g", {"X"});
  auto rule = b.Build();
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(ToString(*rule), "p(X) :- g(X).");
}

TEST(PrinterTest, PrimedVariablesRoundTrip) {
  // AlignRules generates primed names; they must survive a round trip.
  const std::string text = "p(X,Y) :- p(X,Z'), e(Z',Y).";
  auto rule = ParseRule(text);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(ToString(*rule), text);
}

}  // namespace
}  // namespace linrec
