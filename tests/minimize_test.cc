#include "cq/minimize.h"

#include <gtest/gtest.h>

#include "cq/homomorphism.h"
#include "datalog/parser.h"
#include "datalog/printer.h"

namespace linrec {
namespace {

Rule R(const std::string& text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

TEST(DeduplicateTest, RemovesSyntacticCopies) {
  Rule r = R("p(X) :- e(X,Y), e(X,Y), g(X).");
  Rule d = DeduplicateBodyAtoms(r);
  EXPECT_EQ(d.body().size(), 2u);
  EXPECT_TRUE(AreEquivalent(r, d));
}

TEST(MinimizeTest, DropsFoldableAtom) {
  Rule r = R("p(X) :- e(X,Y), e(X,Z).");
  Rule m = MinimizeRule(r);
  EXPECT_EQ(m.body().size(), 1u);
  EXPECT_TRUE(AreEquivalent(r, m));
}

TEST(MinimizeTest, KeepsCore) {
  Rule r = R("p(X) :- e(X,Y), g(Y).");
  Rule m = MinimizeRule(r);
  EXPECT_EQ(m.body().size(), 2u);
}

TEST(MinimizeTest, ChainCollapsesWhenUnanchored) {
  // Body is a 3-chain with only the start distinguished; the chain cannot
  // collapse because each extra hop constrains reachability... it CAN fold:
  // e(X,Y),e(Y,Z) maps onto e(X,Y),e(Y,Z)? A hom must fix X; mapping
  // Z->Y requires e(Y,Y): not present syntactically, so the rule is core.
  Rule r = R("p(X) :- e(X,Y), e(Y,Z).");
  Rule m = MinimizeRule(r);
  EXPECT_EQ(m.body().size(), 2u);
}

TEST(MinimizeTest, SelfLoopAbsorbsChain) {
  Rule r = R("p(X) :- e(X,X), e(X,Y).");
  Rule m = MinimizeRule(r);
  // e(X,Y) folds onto e(X,X) via Y -> X.
  EXPECT_EQ(m.body().size(), 1u);
  EXPECT_TRUE(AreEquivalent(r, m));
}

TEST(MinimizeLinearTest, RecursiveAtomIsPinned) {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y), e(Z,W).");
  ASSERT_TRUE(lr.ok());
  auto m = MinimizeLinearRule(*lr);
  ASSERT_TRUE(m.ok());
  // e(Z,W) folds into e(Z,Y); the recursive atom survives.
  EXPECT_EQ(m->rule().body().size(), 2u);
  EXPECT_EQ(m->recursive_atom().predicate, "p");
  EXPECT_TRUE(AreEquivalent(lr->rule(), m->rule()));
}

TEST(MinimizeTest, MinimalFormUniqueUpToEquivalence) {
  Rule a = MinimizeRule(R("p(X) :- e(X,Y), e(X,Z), g(Z)."));
  Rule b = MinimizeRule(R("p(X) :- e(X,W), g(W)."));
  EXPECT_TRUE(AreEquivalent(a, b));
  EXPECT_EQ(a.body().size(), b.body().size());
}

}  // namespace
}  // namespace linrec
