// Property tests for the specialized closure algorithms: on randomized
// databases they must equal the direct semi-naive closure exactly, and
// Theorem 3.1's duplicate bound must hold for every decomposition.

#include <gtest/gtest.h>

#include "algebra/closure.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "redundancy/closure.h"
#include "redundancy/factorize.h"
#include "separability/algorithm.h"
#include "workload/databases.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

class SeededClosureProperty : public ::testing::TestWithParam<int> {};

TEST_P(SeededClosureProperty, DecomposedEqualsDirectOnSameGeneration) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w =
      MakeSameGeneration(3 + seed % 4, 4 + seed % 5, 2, seed);

  ClosureStats direct_stats;
  ClosureStats decomposed_stats;
  auto direct = DirectClosure({r1, r2}, w.db, w.q, &direct_stats);
  auto decomposed =
      DecomposedClosure({{r1}, {r2}}, w.db, w.q, &decomposed_stats);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(decomposed.ok());
  EXPECT_EQ(*direct, *decomposed);
  // Theorem 3.1.
  EXPECT_LE(decomposed_stats.duplicates, direct_stats.duplicates);
}

TEST_P(SeededClosureProperty, SeparableEqualsSelectThenClose) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w =
      MakeSameGeneration(3 + seed % 3, 4 + seed % 4, 2, seed * 31 + 1);
  for (const Tuple& t : w.q.Sorted()) {
    // σ on X commutes with r1: r1 is the outer closure.
    Selection sigma{0, t[0]};
    auto fast = SeparableClosure({r1}, {r2}, sigma, w.db, w.q);
    ASSERT_TRUE(fast.ok());
    auto slow = ClosureThenSelect({r1}, {r2}, sigma, w.db, w.q);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(*fast, *slow) << "selection on " << t[0];
    break;  // one selection per seed keeps runtime modest
  }
}

TEST_P(SeededClosureProperty, RedundantClosureEqualsDirect) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  LinearRule r = LR("buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).");
  static const RedundantFactorization* factorization = [] {
    auto f = FactorFirstRedundant(
        LinearRule(*ParseLinearRule(
            "buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).")));
    return new RedundantFactorization(*f);
  }();
  KnowsBuysWorkload w =
      MakeKnowsBuys(15 + seed % 10, 40, 8, 0.4, 10, seed * 7 + 3);
  auto direct = SemiNaiveClosure({r}, w.db, w.q);
  ASSERT_TRUE(direct.ok());
  auto fast = RedundantClosure(*factorization, w.db, w.q);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*direct, *fast);
}

TEST_P(SeededClosureProperty, NaiveEqualsSemiNaive) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(18, 36, seed);
  Relation q(2);
  for (int i = 0; i < 18; i += 4) q.Insert({i, i});
  auto naive = NaiveClosure({r}, db, q);
  auto semi = SemiNaiveClosure({r}, db, q);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(*naive, *semi);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededClosureProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace linrec
