// Execution equivalence across strategies: every evaluation route — naive,
// semi-naive, the sequential and the parallel decomposed product, and the
// engine's automatic choice — must produce the identical closure on the
// workload suite. This is the paper's core claim (the theorems rewrite the
// *computation*, never the *result*) and the regression net for the flat
// storage layer and the parallel merge.

#include <gtest/gtest.h>

#include "algebra/closure.h"
#include "common/parallel.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "eval/fixpoint.h"
#include "workload/databases.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto r = ParseLinearRule(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

/// The determinism suite must exercise true cross-thread execution even on
/// single-core CI hosts, where the pool would otherwise (correctly) decline
/// to spawn helper threads.
void ForceRealThreads() { WorkerPool::OverrideThreadCapForTesting(16); }
void RestoreThreadCap() { WorkerPool::OverrideThreadCapForTesting(0); }

/// Asserts naive == semi-naive == engine-auto on (rules, db, q) and returns
/// the agreed closure (as sorted tuples, so failures print deterministic
/// diffs).
std::vector<Tuple> ExpectAllStrategiesAgree(
    const std::vector<LinearRule>& rules, Database db, const Relation& q) {
  auto naive = NaiveClosure(rules, db, q);
  auto semi = SemiNaiveClosure(rules, db, q);
  EXPECT_TRUE(naive.ok()) << naive.status();
  EXPECT_TRUE(semi.ok()) << semi.status();
  EXPECT_EQ(*naive, *semi);

  Engine engine(std::move(db));
  auto prepared = engine.Prepare(Query::Closure(rules));
  EXPECT_TRUE(prepared.ok()) << prepared.status();
  auto engine_out = engine.Execute(prepared->Bind().BindSeed(q));
  EXPECT_TRUE(engine_out.ok()) << engine_out.status();
  EXPECT_EQ(*semi, engine_out->relation());
  return semi->Sorted();
}

TEST(StrategyEquivalence, TransitiveClosureChain) {
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(24);
  Relation q(2);
  for (int i = 0; i < 24; ++i) q.Insert({i, i});
  auto sorted = ExpectAllStrategiesAgree({LR("p(X,Y) :- p(X,Z), e(Z,Y).")},
                                         std::move(db), q);
  EXPECT_EQ(sorted.size(), 24u * 25u / 2u);
}

TEST(StrategyEquivalence, TransitiveClosureGrid) {
  Database db;
  db.GetOrCreate("e", 2) = GridGraph(5, 5);
  Relation q(2);
  for (int i = 0; i < 25; ++i) q.Insert({i, i});
  ExpectAllStrategiesAgree({LR("p(X,Y) :- p(X,Z), e(Z,Y).")}, std::move(db),
                           q);
}

TEST(StrategyEquivalence, TransitiveClosureRandom) {
  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(60, 150, /*seed=*/7);
  Relation q(2);
  for (int i = 0; i < 60; i += 3) q.Insert({i, i});
  ExpectAllStrategiesAgree({LR("p(X,Y) :- p(X,Z), e(Z,Y).")}, std::move(db),
                           q);
}

TEST(StrategyEquivalence, SameGenerationDecomposedSequentialAndParallel) {
  SameGenerationWorkload w =
      MakeSameGeneration(/*layers=*/4, /*width=*/10, /*fanout=*/2,
                         /*seed=*/42);
  std::vector<LinearRule> rules = SameGenerationRules();

  auto direct = SemiNaiveClosure(rules, w.db, w.q);
  ASSERT_TRUE(direct.ok()) << direct.status();

  // The two rules commute, so each may form its own group (Theorem 3.1).
  std::vector<std::vector<LinearRule>> groups = {{rules[0]}, {rules[1]}};
  auto sequential =
      DecomposedClosure(groups, w.db, w.q, nullptr, nullptr, /*workers=*/1);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  EXPECT_EQ(*direct, *sequential);

  // Force the thread-pool path even on single-core machines.
  auto parallel =
      DecomposedClosure(groups, w.db, w.q, nullptr, nullptr, /*workers=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(*direct, *parallel);
}

TEST(StrategyEquivalence, ParallelDecomposedThreeGroups) {
  // Three mutually commuting chase operators over disjoint columns-by-value
  // ranges: each rule advances along its own edge relation. All groups
  // commute pairwise, so any product order — and the parallel merge — must
  // equal the direct closure.
  Database db;
  db.GetOrCreate("e1", 2) = ChainGraph(8);
  Relation shifted(2);
  for (TupleView t : ChainGraph(8)) shifted.Insert({t[0] + 100, t[1] + 100});
  db.GetOrCreate("e2", 2) = shifted;
  Relation far(2);
  for (TupleView t : ChainGraph(8)) far.Insert({t[0] + 200, t[1] + 200});
  db.GetOrCreate("e3", 2) = far;

  std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e1(Z,Y)."),
                                   LR("p(X,Y) :- p(X,Z), e2(Z,Y)."),
                                   LR("p(X,Y) :- p(X,Z), e3(Z,Y).")};
  Relation q(2);
  q.Insert({0, 0});
  q.Insert({0, 100});
  q.Insert({0, 200});

  auto direct = SemiNaiveClosure(rules, db, q);
  ASSERT_TRUE(direct.ok()) << direct.status();

  std::vector<std::vector<LinearRule>> groups = {{rules[0]}, {rules[1]},
                                                 {rules[2]}};
  for (int workers : {1, 2, 4}) {
    auto out = DecomposedClosure(groups, db, q, nullptr, nullptr, workers);
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(*direct, *out) << "workers=" << workers;
  }
}

// --- Parallel semi-naive determinism suite --------------------------------
//
// The intra-round parallel path (work-stealing Δ chunks, thread-local
// output pools, sharded merge) must produce the IDENTICAL closure for every
// worker count and on every repetition — chunk-to-thread assignment is
// scheduler-dependent, so these tests fail if any result depends on it.

TEST(ParallelSemiNaive, DeterministicAcrossWorkerCountsAndRuns_TcRandom) {
  ForceRealThreads();
  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(200, 600, /*seed=*/7);
  std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};
  Relation q(2);
  for (int i = 0; i < 200; i += 4) q.Insert({i, i});

  ClosureStats reference_stats;
  auto reference =
      SemiNaiveClosure(rules, db, q, &reference_stats, nullptr, 1);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (int workers : {1, 2, 8}) {
    for (int run = 0; run < 5; ++run) {
      ClosureStats stats;
      auto out = SemiNaiveClosure(rules, db, q, &stats, nullptr, workers);
      ASSERT_TRUE(out.ok()) << out.status();
      EXPECT_EQ(*reference, *out) << "workers=" << workers << " run=" << run;
      // Derivation and round counts are chunking-independent: each Δ row
      // produces the same matches whichever worker scans it, and every
      // round's Δ is the same set.
      EXPECT_EQ(stats.derivations, reference_stats.derivations)
          << "workers=" << workers << " run=" << run;
      EXPECT_EQ(stats.iterations, reference_stats.iterations);
      EXPECT_EQ(out->Sorted(), reference->Sorted());
    }
  }
  RestoreThreadCap();
}

TEST(ParallelSemiNaive, DeterministicAcrossWorkerCountsAndRuns_SameGen) {
  ForceRealThreads();
  SameGenerationWorkload w =
      MakeSameGeneration(/*layers=*/5, /*width=*/24, /*fanout=*/2,
                         /*seed=*/99);
  std::vector<LinearRule> rules = SameGenerationRules();

  auto reference = SemiNaiveClosure(rules, w.db, w.q, nullptr, nullptr, 1);
  ASSERT_TRUE(reference.ok()) << reference.status();
  std::size_t reference_derivations = 0;
  for (int workers : {1, 2, 8}) {
    for (int run = 0; run < 5; ++run) {
      ClosureStats stats;
      auto out = SemiNaiveClosure(rules, w.db, w.q, &stats, nullptr,
                                  workers);
      ASSERT_TRUE(out.ok()) << out.status();
      EXPECT_EQ(*reference, *out) << "workers=" << workers << " run=" << run;
      if (reference_derivations == 0) {
        reference_derivations = stats.derivations;
      }
      EXPECT_EQ(stats.derivations, reference_derivations)
          << "workers=" << workers << " run=" << run;
    }
  }
  RestoreThreadCap();
}

TEST(ParallelSemiNaive, ResumeDeterministicAcrossWorkerCounts) {
  ForceRealThreads();
  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(150, 450, /*seed=*/21);
  std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};

  Relation q1(2);
  for (int i = 0; i < 150; i += 10) q1.Insert({i, i});
  auto closed = SemiNaiveClosure(rules, db, q1, nullptr, nullptr, 1);
  ASSERT_TRUE(closed.ok()) << closed.status();

  Relation extra(2);
  for (int i = 5; i < 150; i += 10) extra.Insert({i, i});
  auto reference = SemiNaiveResume(rules, db, *closed, extra, nullptr,
                                   nullptr, 1);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (int workers : {2, 8}) {
    auto out =
        SemiNaiveResume(rules, db, *closed, extra, nullptr, nullptr,
                        workers);
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(*reference, *out) << "workers=" << workers;
  }
  RestoreThreadCap();
}

TEST(ParallelSemiNaive, EngineForcedParallelMatchesSerial) {
  ForceRealThreads();
  // Engine-level: parallel_workers applies to the automatically planned
  // strategy; an 8-worker engine and a serial engine agree on tc_random.
  auto build_engine = [](int workers) {
    Database db;
    db.GetOrCreate("e", 2) = RandomGraph(200, 600, /*seed=*/7);
    EngineOptions options;
    options.parallel_workers = workers;
    return Engine(std::move(db), options);
  };
  Relation q(2);
  for (int i = 0; i < 200; i += 4) q.Insert({i, i});
  std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};

  Engine serial_engine = build_engine(1);
  Engine parallel_engine = build_engine(8);
  auto serial_prepared = serial_engine.Prepare(Query::Closure(rules));
  auto parallel_prepared = parallel_engine.Prepare(Query::Closure(rules));
  ASSERT_TRUE(serial_prepared.ok()) << serial_prepared.status();
  ASSERT_TRUE(parallel_prepared.ok()) << parallel_prepared.status();
  auto serial = serial_engine.Execute(serial_prepared->Bind().BindSeed(q));
  auto parallel =
      parallel_engine.Execute(parallel_prepared->Bind().BindSeed(q));
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(serial->relation(), parallel->relation());
  RestoreThreadCap();
}

TEST(ParallelSemiNaive, ParallelNaiveAndPowerSumMatchSerial) {
  ForceRealThreads();
  Database db;
  db.GetOrCreate("e", 2) = RandomGraph(120, 360, /*seed=*/3);
  std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};
  Relation q(2);
  for (int i = 0; i < 120; i += 6) q.Insert({i, i});

  auto naive_serial = NaiveClosure(rules, db, q, nullptr, nullptr, 1);
  auto naive_parallel = NaiveClosure(rules, db, q, nullptr, nullptr, 8);
  ASSERT_TRUE(naive_serial.ok()) << naive_serial.status();
  ASSERT_TRUE(naive_parallel.ok()) << naive_parallel.status();
  EXPECT_EQ(*naive_serial, *naive_parallel);

  auto power_serial = PowerSum(rules, db, q, 6, nullptr, nullptr, 1);
  auto power_parallel = PowerSum(rules, db, q, 6, nullptr, nullptr, 8);
  ASSERT_TRUE(power_serial.ok()) << power_serial.status();
  ASSERT_TRUE(power_parallel.ok()) << power_parallel.status();
  EXPECT_EQ(*power_serial, *power_parallel);
  RestoreThreadCap();
}

TEST(StrategyEquivalence, SimdAndScalarScansAgreeOnEveryStrategysClosure) {
  // The σ scan must be kernel-independent on every strategy's output: the
  // vectorized WhereEquals and the scalar reference kernel see the same
  // pool layout the closure produced and must pick the same rows in the
  // same order. (The cross-build half of the guarantee — a LINREC_SIMD=OFF
  // binary producing identical closures — is this same suite under the CI
  // simd-off job.)
  SameGenerationWorkload w =
      MakeSameGeneration(/*layers=*/4, /*width=*/8, /*fanout=*/2, /*seed=*/9);
  std::vector<LinearRule> rules = SameGenerationRules();

  auto check = [](const Relation& closure) {
    ASSERT_GT(closure.size(), 0u);
    const Value probe = closure.Row(0)[0];
    for (Value v : {probe, Value{-1}}) {
      Relation simd = closure.WhereEquals(0, v);
      Relation scalar = closure.WhereEqualsScalar(0, v);
      ASSERT_EQ(simd.size(), scalar.size());
      for (std::size_t r = 0; r < simd.size(); ++r) {
        ASSERT_TRUE(simd.Row(static_cast<RowId>(r)) ==
                    scalar.Row(static_cast<RowId>(r)))
            << "row " << r << " differs between kernels";
      }
    }
  };

  auto naive = NaiveClosure(rules, w.db, w.q);
  ASSERT_TRUE(naive.ok()) << naive.status();
  check(*naive);

  auto semi = SemiNaiveClosure(rules, w.db, w.q);
  ASSERT_TRUE(semi.ok()) << semi.status();
  check(*semi);

  auto power = PowerSum(rules, w.db, w.q, /*max_power=*/64);
  ASSERT_TRUE(power.ok()) << power.status();
  check(*power);

  std::vector<std::vector<LinearRule>> groups = {{rules[0]}, {rules[1]}};
  auto decomposed =
      DecomposedClosure(groups, w.db, w.q, nullptr, nullptr, /*workers=*/1);
  ASSERT_TRUE(decomposed.ok()) << decomposed.status();
  check(*decomposed);
}

TEST(StrategyEquivalence, SemiNaiveResumeMatchesFromScratch) {
  // Resuming from a closed part plus extra seeds must equal closing the
  // union from scratch.
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(16);
  std::vector<LinearRule> rules = {LR("p(X,Y) :- p(X,Z), e(Z,Y).")};

  Relation q1(2);
  q1.Insert({0, 0});
  auto closed = SemiNaiveClosure(rules, db, q1);
  ASSERT_TRUE(closed.ok()) << closed.status();

  Relation extra(2);
  extra.Insert({5, 5});
  extra.Insert({0, 3});  // already derivable: must not disturb anything

  Relation both = q1;
  both.UnionWith(extra);
  auto scratch = SemiNaiveClosure(rules, db, both);
  ASSERT_TRUE(scratch.ok()) << scratch.status();

  auto resumed = SemiNaiveResume(rules, db, *closed, extra);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(*scratch, *resumed);
}

}  // namespace
}  // namespace linrec
