#include "redundancy/boundedness.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

TEST(TorsionTest, IdempotentGuard) {
  // p(X) :- p(X), g(X): r^2 ≡ r, so torsion with K=1, N=2.
  LinearRule r = LR("p(X) :- p(X), g(X).");
  auto t = FindTorsion(r, 6);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->found);
  EXPECT_EQ(t->k, 1);
  EXPECT_EQ(t->n, 2);
}

TEST(TorsionTest, PurePermutationHasPeriod) {
  // A 3-cycle of positions: r^4 = r (since r^3 = identity-on-positions).
  LinearRule r = LR("p(X,Y,Z) :- p(Y,Z,X).");
  auto t = FindTorsion(r, 8);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->found);
  EXPECT_EQ(t->n - t->k, 3);
}

TEST(TorsionTest, TransitiveClosureIsNotTorsion) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto t = FindTorsion(r, 6);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->found);
}

TEST(UniformBoundTest, TorsionImpliesBounded) {
  LinearRule r = LR("p(X) :- p(X), g(X).");
  auto b = FindUniformBound(r, 6);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->found);
}

TEST(UniformBoundTest, Example62WideRuleBounded) {
  // C of Example 6.2: P(w,x,y,z) :- P(x,w,x,z), R(x,y). No nondistinguished
  // variables, so powers cycle.
  LinearRule c = LR("p(W,X,Y,Z) :- p(X,W,X,Z), rr(X,Y).");
  auto b = FindUniformBound(c, 8);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->found);
  auto t = FindTorsion(c, 8);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->found) << "Lemma 6.2: bounded restricted rules are torsion";
}

TEST(UniformBoundTest, CheapPredicateRuleBounded) {
  // Example 6.1's bridge rule: buys(x,y) :- buys(x,y), cheap(y).
  LinearRule c = LR("buys(X,Y) :- buys(X,Y), cheap(Y).");
  auto b = FindUniformBound(c, 4);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->found);
  EXPECT_EQ(b->k, 1);
  EXPECT_EQ(b->n, 2);
}

TEST(UniformBoundTest, BudgetTooSmallReportsNotFound) {
  // Period-3 permutation: needs n = 4 to see r^4 ≡ r; budget 3 misses it.
  LinearRule r = LR("p(X,Y,Z) :- p(Y,Z,X).");
  auto t = FindTorsion(r, 3);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->found);
}

TEST(BoundednessTest, InvalidBudgetRejected) {
  LinearRule r = LR("p(X) :- p(X), g(X).");
  EXPECT_FALSE(FindTorsion(r, 1).ok());
}

TEST(UniformBoundTest, BoundedButNotTorsionOutsideRestrictedClass) {
  // p(X) :- p(Y), g(Y), g(X): r^2 ≤ r (every round output ⊆ g ⋈ ...), and
  // with repeated predicate g the rule is outside the restricted class.
  // r^2 body: p(Z), g(Z), g(Y'), g(X) — contained in r; and r ≤ r^2 fails?
  // Actually r^2 ≡ r here (g(Y') folds). The point: the search still works.
  LinearRule r = LR("p(X) :- p(Y), g(Y), g(X).");
  auto b = FindUniformBound(r, 6);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->found);
}

}  // namespace
}  // namespace linrec
