// Property test: the indexed join evaluator agrees with a brute-force
// nested-loop evaluator on randomized rules and databases.

#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "eval/apply.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

/// Reference evaluator: tries every combination of body-atom tuples.
Relation BruteForce(const LinearRule& lr, const Database& db,
                    const Relation& input) {
  const Rule& rule = lr.rule();
  Relation out(rule.head().arity());
  std::vector<const Relation*> rels;
  for (std::size_t i = 0; i < rule.body().size(); ++i) {
    if (static_cast<int>(i) == lr.recursive_atom_index()) {
      rels.push_back(&input);
    } else {
      const Relation* r = db.Find(rule.body()[i].predicate);
      if (r == nullptr) return out;
      rels.push_back(r);
    }
  }
  std::vector<TupleView> chosen(rule.body().size());
  std::function<void(std::size_t)> rec = [&](std::size_t depth) {
    if (depth == rule.body().size()) {
      std::vector<std::optional<Value>> binding(
          static_cast<std::size_t>(rule.var_count()));
      for (std::size_t i = 0; i < rule.body().size(); ++i) {
        const Atom& atom = rule.body()[i];
        for (std::size_t p = 0; p < atom.terms.size(); ++p) {
          const Term& t = atom.terms[p];
          Value v = chosen[i][p];
          if (t.is_const()) {
            if (t.constant() != v) return;
          } else {
            auto& slot = binding[static_cast<std::size_t>(t.var())];
            if (slot.has_value()) {
              if (*slot != v) return;
            } else {
              slot = v;
            }
          }
        }
      }
      std::vector<Value> head;
      for (const Term& t : rule.head().terms) {
        head.push_back(t.is_const()
                           ? t.constant()
                           : *binding[static_cast<std::size_t>(t.var())]);
      }
      out.Insert(Tuple(std::move(head)));
      return;
    }
    for (TupleView t : *rels[depth]) {
      chosen[depth] = t;
      rec(depth + 1);
    }
  };
  rec(0);
  return out;
}

class EvalAgreementProperty : public ::testing::TestWithParam<int> {};

TEST_P(EvalAgreementProperty, IndexedJoinMatchesBruteForce) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  auto lr = RandomLinearRule(2 + seed % 3, 1 + seed % 3, seed * 13 + 5);
  ASSERT_TRUE(lr.ok());

  Database db;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, 5);
  for (const Atom& atom : lr->rule().body()) {
    if (atom.predicate == "p") continue;
    Relation& rel = db.GetOrCreate(atom.predicate, atom.arity());
    for (int i = 0; i < 12; ++i) {
      std::vector<Value> values;
      for (std::size_t j = 0; j < atom.arity(); ++j) {
        values.push_back(pick(rng));
      }
      rel.Insert(Tuple(std::move(values)));
    }
  }
  Relation input(lr->arity());
  for (int i = 0; i < 8; ++i) {
    std::vector<Value> values;
    for (std::size_t j = 0; j < lr->arity(); ++j) values.push_back(pick(rng));
    input.Insert(Tuple(std::move(values)));
  }

  auto indexed = ApplySum({*lr}, db, input);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  Relation reference = BruteForce(*lr, db, input);
  EXPECT_EQ(*indexed, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalAgreementProperty,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace linrec
