// Rendering coverage: DOT export and the textual analysis report, across
// every variable class and both bridge decompositions.

#include "analysis/dot.h"

#include <gtest/gtest.h>

#include "analysis/rule_analysis.h"
#include "datalog/parser.h"

namespace linrec {
namespace {

RuleAnalysis Analyze(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  auto analysis = RuleAnalysis::Compute(*lr);
  EXPECT_TRUE(analysis.ok()) << analysis.status();
  return std::move(*analysis);
}

TEST(DotTest, AllVariableClassesRendered) {
  // Figure 1 reconstruction: every class appears.
  RuleAnalysis a =
      Analyze("p(U,V,W,X,Y,Z) :- p(V,U,W,Y,Y,Z), q(W,X), rr(X,Y).");
  std::string report = AsciiReport(a);
  EXPECT_NE(report.find("free 1-persistent"), std::string::npos);
  EXPECT_NE(report.find("link 1-persistent"), std::string::npos);
  EXPECT_NE(report.find("free 2-persistent"), std::string::npos);
  EXPECT_NE(report.find("1-ray general"), std::string::npos);
}

TEST(DotTest, DotIsWellFormed) {
  RuleAnalysis a = Analyze("p(X,Y) :- p(X,Z), e(Z,Y), g(X).");
  std::string dot = ToDot(a);
  EXPECT_EQ(dot.find("digraph alpha {"), 0u);
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
  // Every variable appears as a node line.
  for (const char* name : {"X", "Y", "Z"}) {
    EXPECT_NE(dot.find(std::string("\"") + name + "\""), std::string::npos);
  }
}

TEST(DotTest, ReportListsBothDecompositions) {
  RuleAnalysis a =
      Analyze("p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
  std::string report = AsciiReport(a);
  EXPECT_NE(report.find("commutativity bridges"), std::string::npos);
  EXPECT_NE(report.find("redundancy bridges"), std::string::npos);
  EXPECT_NE(report.find("rr(X,Y)"), std::string::npos);
}

TEST(DotTest, NoBridgesReportedAsNone) {
  // Pure permutation rule: no static arcs, only free-persistent cycles —
  // still renders (bridges consist of dynamic arcs only).
  RuleAnalysis a = Analyze("p(X,Y,Z) :- p(Y,Z,X).");
  std::string report = AsciiReport(a);
  EXPECT_NE(report.find("free 3-persistent"), std::string::npos);
}

}  // namespace
}  // namespace linrec
