#include "analysis/bridges.h"

#include <gtest/gtest.h>

#include "analysis/rule_analysis.h"
#include "datalog/parser.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

VarId Var(const LinearRule& lr, const std::string& name) {
  for (VarId v = 0; v < lr.rule().var_count(); ++v) {
    if (lr.rule().var_name(v) == name) return v;
  }
  ADD_FAILURE() << "no variable " << name;
  return -1;
}

TEST(BridgesTest, TransitiveClosureHasOneBridgePerGeneralSide) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto a = RuleAnalysis::Compute(r);
  ASSERT_TRUE(a.ok());
  // No link 1-persistent vars, so V' is empty: bridges are the connected
  // components. X has its dynamic self-arc; Z,Y form the e-component.
  const auto& bridges = a->commutativity_bridges();
  ASSERT_EQ(bridges.size(), 2u);
}

TEST(BridgesTest, Figure2ThreeBridges) {
  // Figure 2 of the paper (Q read as Q(u,x,y); see DESIGN.md):
  // P(u,w,x,y,z) :- P(u,u,u,y,y), Q(u,x,y), R(w), S(x), T(z).
  LinearRule r =
      LR("p(U,W,X,Y,Z) :- p(U,U,U,Y,Y), q(U,X,Y), rr(W), s(X), t(Z).");
  auto a = RuleAnalysis::Compute(r);
  ASSERT_TRUE(a.ok());
  // U and Y are link 1-persistent; bridges split at them.
  EXPECT_TRUE(a->classes().Of(Var(r, "U")).IsLink1Persistent());
  EXPECT_TRUE(a->classes().Of(Var(r, "Y")).IsLink1Persistent());

  const auto& bridges = a->commutativity_bridges();
  ASSERT_EQ(bridges.size(), 3u);

  // Identify the three bridges by their predicate content.
  int rr_bridge = -1, qs_bridge = -1, t_bridge = -1;
  for (std::size_t i = 0; i < bridges.size(); ++i) {
    bool has_rr = false, has_q = false, has_t = false;
    for (int ai : bridges[i].atom_indices) {
      const std::string& pred =
          r.rule().body()[static_cast<std::size_t>(ai)].predicate;
      has_rr |= pred == "rr";
      has_q |= pred == "q";
      has_t |= pred == "t";
    }
    if (has_rr) rr_bridge = static_cast<int>(i);
    if (has_q) qs_bridge = static_cast<int>(i);
    if (has_t) t_bridge = static_cast<int>(i);
  }
  ASSERT_GE(rr_bridge, 0);
  ASSERT_GE(qs_bridge, 0);
  ASSERT_GE(t_bridge, 0);
  EXPECT_NE(rr_bridge, qs_bridge);
  EXPECT_NE(qs_bridge, t_bridge);

  // The q-bridge also contains s (shared node X) and attaches U and Y.
  const Bridge& qs = bridges[static_cast<std::size_t>(qs_bridge)];
  EXPECT_EQ(qs.atom_indices.size(), 2u);
  EXPECT_TRUE(qs.ContainsVar(Var(r, "U")));
  EXPECT_TRUE(qs.ContainsVar(Var(r, "Y")));
  EXPECT_TRUE(qs.ContainsVar(Var(r, "X")));
}

TEST(BridgesTest, AttachedExpandsThroughGPrimeComponents) {
  // Redundancy bridges of Figure 7's rule: the R-bridge attaches the whole
  // G_I component {W,X,Y}.
  LinearRule r = LR("p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
  auto a = RuleAnalysis::Compute(r);
  ASSERT_TRUE(a.ok());
  const auto& bridges = a->redundancy_bridges();
  int rr_bridge = -1;
  for (std::size_t i = 0; i < bridges.size(); ++i) {
    for (int ai : bridges[i].atom_indices) {
      if (r.rule().body()[static_cast<std::size_t>(ai)].predicate == "rr") {
        rr_bridge = static_cast<int>(i);
      }
    }
  }
  ASSERT_GE(rr_bridge, 0);
  const Bridge& b = bridges[static_cast<std::size_t>(rr_bridge)];
  EXPECT_TRUE(b.ContainsVar(Var(r, "W")));
  EXPECT_TRUE(b.ContainsVar(Var(r, "X")));
  EXPECT_TRUE(b.ContainsVar(Var(r, "Y")));
  EXPECT_FALSE(b.ContainsVar(Var(r, "Z")));
}

TEST(BridgesTest, LiteralCoarseningKeepsAtomsWhole) {
  // q(A,V,B) with V link 1-persistent: the two q-arcs must stay together.
  LinearRule r = LR("p(V,A,B) :- p(V,V,V), q(A,V,B), g(V).");
  auto a = RuleAnalysis::Compute(r);
  ASSERT_TRUE(a.ok());
  int q_atom = -1;
  for (int ai : r.NonRecursiveAtomIndices()) {
    if (r.rule().body()[static_cast<std::size_t>(ai)].predicate == "q") {
      q_atom = ai;
    }
  }
  int owners = 0;
  for (const Bridge& b : a->commutativity_bridges()) {
    if (std::count(b.atom_indices.begin(), b.atom_indices.end(), q_atom) >
        0) {
      ++owners;
    }
  }
  EXPECT_EQ(owners, 1);
}

TEST(BridgesTest, BridgeOfLookup) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto a = RuleAnalysis::Compute(r);
  ASSERT_TRUE(a.ok());
  int bx = a->CommutativityBridgeOf(Var(r, "X"));
  int by = a->CommutativityBridgeOf(Var(r, "Y"));
  ASSERT_GE(bx, 0);
  ASSERT_GE(by, 0);
  EXPECT_NE(bx, by);
  EXPECT_EQ(a->CommutativityBridgeOf(Var(r, "Z")), by);
}

TEST(BridgesTest, EPrimeArcsBelongToNoBridge) {
  LinearRule r = LR("p(V,X) :- p(V,V), g(V), e(X,V).");
  auto a = RuleAnalysis::Compute(r);
  ASSERT_TRUE(a.ok());
  // V is link 1-persistent; its self dynamic arc is E'.
  for (const Bridge& b : a->commutativity_bridges()) {
    for (int arc_id : b.arcs) {
      const AlphaArc& arc = a->graph().arcs()[static_cast<std::size_t>(arc_id)];
      bool is_self_dynamic_at_link = arc.is_dynamic() && arc.u == arc.v &&
                                     arc.u == Var(r, "V");
      EXPECT_FALSE(is_self_dynamic_at_link);
    }
  }
}

}  // namespace
}  // namespace linrec
