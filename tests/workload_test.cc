#include "workload/graphs.h"

#include <gtest/gtest.h>

#include "datalog/traits.h"
#include "workload/databases.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

TEST(GraphsTest, Chain) {
  Relation g = ChainGraph(5);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_TRUE(g.Contains({0, 1}));
  EXPECT_TRUE(g.Contains({3, 4}));
  EXPECT_TRUE(ChainGraph(1).empty());
  EXPECT_TRUE(ChainGraph(0).empty());
}

TEST(GraphsTest, Cycle) {
  Relation g = CycleGraph(4);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_TRUE(g.Contains({3, 0}));
}

TEST(GraphsTest, Tree) {
  Relation g = TreeGraph(2, 3);  // complete binary of depth 3
  EXPECT_EQ(g.size(), 2u + 4u + 8u);
  EXPECT_TRUE(g.Contains({0, 1}));
  EXPECT_TRUE(g.Contains({0, 2}));
  EXPECT_TRUE(g.Contains({1, 3}));
}

TEST(GraphsTest, Grid) {
  Relation g = GridGraph(2, 3);
  // Horizontal: 2*2; vertical: 3*1.
  EXPECT_EQ(g.size(), 7u);
}

TEST(GraphsTest, RandomDeterministicInSeed) {
  Relation a = RandomGraph(20, 30, 5);
  Relation b = RandomGraph(20, 30, 5);
  Relation c = RandomGraph(20, 30, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 30u);
  for (TupleView t : a) EXPECT_NE(t[0], t[1]);  // no self loops
}

TEST(GraphsTest, LayeredDagStructure) {
  Relation g = LayeredDag(3, 4, 2, 9);
  for (TupleView t : g) {
    EXPECT_EQ(t[1] / 4, t[0] / 4 + 1) << "edges go to the next layer";
  }
}

TEST(DatabasesTest, SameGenerationShape) {
  SameGenerationWorkload w = MakeSameGeneration(4, 5, 2, 1);
  ASSERT_NE(w.db.Find("up"), nullptr);
  ASSERT_NE(w.db.Find("down"), nullptr);
  EXPECT_EQ(w.db.Find("up")->size(), w.db.Find("down")->size());
  EXPECT_EQ(w.q.size(), 20u);  // identity over all 4x5 nodes
  // up is the reverse of down.
  for (TupleView t : *w.db.Find("down")) {
    EXPECT_TRUE(w.db.Find("up")->Contains({t[1], t[0]}));
  }
}

TEST(DatabasesTest, KnowsBuysShape) {
  KnowsBuysWorkload w = MakeKnowsBuys(10, 20, 5, 1.0, 8, 2);
  EXPECT_EQ(w.db.Find("knows")->size(), 20u);
  EXPECT_EQ(w.db.Find("cheap")->size(), 5u);  // fraction 1.0
  EXPECT_EQ(w.db.Find("cheap")->arity(), 1u);
  EXPECT_LE(w.q.size(), 8u);
  // Items are disjoint from people ids.
  for (TupleView t : *w.db.Find("cheap")) EXPECT_GE(t[0], 10);
}

TEST(RulegenTest, CommutingPairInRestrictedClass) {
  auto pair = MakeRestrictedCommutingPair(3);
  ASSERT_TRUE(pair.ok());
  EXPECT_TRUE(ComputeTraits(pair->first.rule()).InRestrictedClass());
  EXPECT_TRUE(ComputeTraits(pair->second.rule()).InRestrictedClass());
  EXPECT_EQ(pair->first.arity(), 6u);
}

TEST(RulegenTest, RepeatedPredicatePairLeavesRestrictedClass) {
  auto pair = MakeRepeatedPredicatePair(2, 2);
  ASSERT_TRUE(pair.ok());
  EXPECT_TRUE(
      ComputeTraits(pair->first.rule()).repeated_nonrecursive_predicates);
}

TEST(RulegenTest, RandomRuleIsValidAndDeterministic) {
  auto a = RandomLinearRule(3, 4, 77);
  auto b = RandomLinearRule(3, 4, 77);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rule().head().arity(), 3u);
  EXPECT_TRUE(ComputeTraits(a->rule()).linear);
  EXPECT_TRUE(ComputeTraits(a->rule()).constant_free);
  // Determinism: same seed, same structure.
  EXPECT_EQ(a->rule().body().size(), b->rule().body().size());
}

TEST(RulegenTest, InvalidParametersRejected) {
  EXPECT_FALSE(MakeRestrictedCommutingPair(0).ok());
  EXPECT_FALSE(MakeRepeatedPredicatePair(0, 1).ok());
  EXPECT_FALSE(RandomLinearRule(0, 1, 1).ok());
}

}  // namespace
}  // namespace linrec
