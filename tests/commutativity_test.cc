#include "commutativity/oracle.h"

#include <gtest/gtest.h>

#include "commutativity/definitional.h"
#include "commutativity/syntactic.h"
#include "cq/compose.h"
#include "cq/homomorphism.h"
#include "datalog/parser.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

TEST(SyntacticTest, Example52TransitiveClosureForms) {
  // The canonical commuting pair: the two linear forms of transitive
  // closure (Example 5.2, Figure 3). Clause (a) everywhere.
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  auto result = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->condition_holds);
  EXPECT_EQ(result->clause_per_position[0], 'a');
  EXPECT_EQ(result->clause_per_position[1], 'a');
}

TEST(SyntacticTest, Example52CompositeIsSameGeneration) {
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  auto c12 = Compose(r1, r2);
  auto c21 = Compose(r2, r1);
  ASSERT_TRUE(c12.ok());
  ASSERT_TRUE(c21.ok());
  auto sg = ParseLinearRule("p(X,Y) :- p(U,V), up(X,U), down(V,Y).");
  ASSERT_TRUE(sg.ok());
  EXPECT_TRUE(AreEquivalent(c12->rule(), sg->rule()));
  EXPECT_TRUE(AreEquivalent(c21->rule(), sg->rule()));
}

TEST(SyntacticTest, Example53ThreeAryRules) {
  // Example 5.3 / Figure 4:
  //   r1: P(x,y,z) :- P(u,y,z), Q(x,y).
  //   r2: P(x,y,z) :- P(x,y,u), R(z,y).
  LinearRule r1 = LR("p(X,Y,Z) :- p(U,Y,Z), q(X,Y).");
  LinearRule r2 = LR("p(X,Y,Z) :- p(X,Y,U), rr(Z,Y).");
  auto result = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->condition_holds);
  // x: general in r1, free 1-persistent in r2 → (a);
  // y: link 1-persistent in both → (b);
  // z: free 1-persistent in r1 → (a).
  EXPECT_EQ(result->clause_per_position[0], 'a');
  EXPECT_EQ(result->clause_per_position[1], 'b');
  EXPECT_EQ(result->clause_per_position[2], 'a');

  auto both = Compose(r1, r2);
  ASSERT_TRUE(both.ok());
  auto expected = ParseLinearRule("p(X,Y,Z) :- p(U,Y,V), q(X,Y), rr(Z,Y).");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(AreEquivalent(both->rule(), expected->rule()));
}

TEST(SyntacticTest, Example54SufficiencyOnly) {
  // Example 5.4 / Figure 5: the rules commute but violate the condition
  // (they are outside the restricted class: repeated predicate Q in r2).
  LinearRule r1 = LR("p(X,Y) :- p(Y,W), q(X).");
  LinearRule r2 = LR("p(X,Y) :- p(U,V), q(X), q(Y).");
  auto syntactic = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(syntactic.ok());
  EXPECT_FALSE(syntactic->condition_holds);

  auto exact = DefinitionalCommute(r1, r2);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(*exact);

  // The oracle must fall back to the definitional test and say yes.
  auto report = CheckCommutativity(r1, r2);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->commute);
  EXPECT_FALSE(report->syntactic_holds);
  EXPECT_FALSE(report->restricted_class);
  EXPECT_TRUE(report->definitional_used);
}

TEST(SyntacticTest, ClauseBLinkOneInBoth) {
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), e(Z,Y), g(X).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), f(Z,Y), g(X).");
  auto result = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(result.ok());
  // X is link 1-persistent in both (appears in g): clause (b).
  EXPECT_EQ(result->clause_per_position[0], 'b');
}

TEST(SyntacticTest, ClauseCFreePersistentCommutingPermutations) {
  // r1 swaps (X,Y) and fixes (V,W); r2 swaps (V,W) and fixes (X,Y): the
  // permutations commute (disjoint transpositions).
  LinearRule r1 = LR("p(X,Y,V,W) :- p(Y,X,V,W), q(A), e(A,B).");
  LinearRule r2 = LR("p(X,Y,V,W) :- p(X,Y,W,V), s(C), f(C,D).");
  auto result = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(result.ok());
  // Positions of X,Y: free 2-persistent in r1, free 1-persistent in r2 →
  // clause (a) via r2; positions V,W: (a) via r1.
  EXPECT_TRUE(result->condition_holds);
}

TEST(SyntacticTest, ClauseCRequiresCommutingH) {
  // Both rules 3-cycle the same variables but differently: h1 = (XYZ),
  // h2 = (XZY); h1h2 fixes X... full check via the exact test: these do
  // commute iff the permutations commute. (XYZ)(XZY) = id = (XZY)(XYZ), so
  // they DO commute here.
  LinearRule r1 = LR("p(X,Y,Z) :- p(Y,Z,X).");
  LinearRule r2 = LR("p(X,Y,Z) :- p(Z,X,Y).");
  auto result = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->condition_holds);
  for (char c : result->clause_per_position) EXPECT_EQ(c, 'c');

  auto exact = DefinitionalCommute(r1, r2);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(*exact);
}

TEST(SyntacticTest, NonCommutingPermutationsFail) {
  // h1 swaps positions 0,1; h2 swaps positions 1,2. The permutations do not
  // commute, so neither do the operators.
  LinearRule r1 = LR("p(X,Y,Z) :- p(Y,X,Z).");
  LinearRule r2 = LR("p(X,Y,Z) :- p(X,Z,Y).");
  auto result = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->condition_holds);
  auto exact = DefinitionalCommute(r1, r2);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(*exact);
  // Restricted class → oracle decides without the definitional test.
  auto report = CheckCommutativity(r1, r2);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->commute);
  EXPECT_TRUE(report->restricted_class);
  EXPECT_FALSE(report->definitional_used);
}

TEST(SyntacticTest, ClauseDEquivalentBridges) {
  // Y is general in both rules with identical q-bridges.
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  auto result = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->condition_holds);
  EXPECT_EQ(result->clause_per_position[1], 'd');
}

TEST(SyntacticTest, ClauseDInequivalentBridgesFail) {
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  auto result = CheckSyntacticCondition(r1, r2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->condition_holds);
  auto exact = DefinitionalCommute(r1, r2);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(*exact);
}

TEST(OracleTest, RestrictedClassAgreesWithDefinition) {
  const char* rules[] = {
      "p(X,Y) :- p(X,Z), e(Z,Y).",
      "p(X,Y) :- p(Z,Y), f(X,Z).",
      "p(X,Y) :- p(X,Y), g(X).",
      "p(X,Y) :- p(Y,X).",
      "p(X,Y) :- p(X,Z), e(Z,Y), g(X).",
  };
  for (const char* ta : rules) {
    for (const char* tb : rules) {
      LinearRule a = LR(ta);
      LinearRule b = LR(tb);
      auto report = CheckCommutativity(a, b);
      ASSERT_TRUE(report.ok()) << ta << " vs " << tb;
      auto exact = DefinitionalCommute(a, b);
      ASSERT_TRUE(exact.ok());
      EXPECT_EQ(report->commute, *exact) << ta << " vs " << tb;
    }
  }
}

TEST(OracleTest, MismatchedAritiesRejected) {
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  LinearRule r2 = LR("p(X) :- p(X), g(X).");
  EXPECT_FALSE(CheckCommutativity(r1, r2).ok());
}

TEST(OracleTest, GeneratedCommutingPairs) {
  for (int half : {1, 2, 4, 8}) {
    auto pair = MakeRestrictedCommutingPair(half);
    ASSERT_TRUE(pair.ok());
    auto report = CheckCommutativity(pair->first, pair->second);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->commute) << "half_arity=" << half;
    EXPECT_TRUE(report->syntactic_holds);
    EXPECT_TRUE(report->restricted_class);
  }
}

TEST(OracleTest, GeneratedNonCommutingPairs) {
  for (int half : {1, 2, 4}) {
    auto pair = MakeRestrictedNonCommutingPair(half);
    ASSERT_TRUE(pair.ok());
    auto report = CheckCommutativity(pair->first, pair->second);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->commute) << "half_arity=" << half;
    auto exact = DefinitionalCommute(pair->first, pair->second);
    ASSERT_TRUE(exact.ok());
    EXPECT_FALSE(*exact);
  }
}

TEST(OracleTest, RepeatedPredicatePairsCommute) {
  auto pair = MakeRepeatedPredicatePair(2, 3);
  ASSERT_TRUE(pair.ok());
  auto report = CheckCommutativity(pair->first, pair->second);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->commute);
  EXPECT_TRUE(report->syntactic_holds);   // decided without composites
  EXPECT_FALSE(report->restricted_class);
  EXPECT_FALSE(report->definitional_used);
}

TEST(SyntacticTest, SelfCommutativityAlwaysHolds) {
  // Any rule commutes with itself; the syntactic condition must accept.
  const char* rules[] = {
      "p(X,Y) :- p(X,Z), e(Z,Y).",
      "p(X,Y) :- p(Y,X), q(X,Y).",
      "p(X,Y,Z) :- p(Y,Z,X), g(X).",
  };
  for (const char* text : rules) {
    LinearRule r = LR(text);
    auto result = CheckSyntacticCondition(r, r);
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_TRUE(result->condition_holds) << text;
  }
}

}  // namespace
}  // namespace linrec
