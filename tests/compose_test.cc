#include "cq/compose.h"

#include <gtest/gtest.h>

#include "cq/homomorphism.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "eval/apply.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

TEST(ComposeTest, TransitiveClosureComposites) {
  // Example 5.2: composing the two forms of transitive closure yields the
  // same-generation rule.
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  auto c12 = Compose(r1, r2);
  ASSERT_TRUE(c12.ok()) << c12.status();
  auto expected =
      ParseLinearRule("p(X,Y) :- p(U,V), up(X,U), down(V,Y).");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(AreEquivalent(c12->rule(), expected->rule()));
}

TEST(ComposeTest, OperatorProductSemantics) {
  // (r1 · r2) q == r1(r2(q)) on a concrete database.
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  Database db;
  db.GetOrCreate("down", 2) = RandomGraph(20, 40, 3);
  db.GetOrCreate("up", 2) = RandomGraph(20, 40, 4);
  Relation q(2);
  for (int i = 0; i < 20; i += 3) q.Insert({i, (i * 7) % 20});

  auto composite = Compose(r1, r2);
  ASSERT_TRUE(composite.ok());
  auto direct = ApplySum({*composite}, db, q);
  ASSERT_TRUE(direct.ok());
  auto inner = ApplySum({r2}, db, q);
  ASSERT_TRUE(inner.ok());
  auto nested = ApplySum({r1}, db, *inner);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*direct, *nested);
}

TEST(ComposeTest, FreshVariablesDoNotCollide) {
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), f(Z,Y).");
  auto c = Compose(r1, r2);
  ASSERT_TRUE(c.ok());
  // Composite: p(X,Y) :- p(X,Z'), f(Z',Z), e(Z,Y) — three distinct body vars.
  auto expected = ParseLinearRule("p(X,Y) :- p(X,A), f(A,B), e(B,Y).");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(AreEquivalent(c->rule(), expected->rule()));
}

TEST(ComposeTest, MismatchedPredicatesRejected) {
  LinearRule r1 = LR("p(X) :- p(X), a(X).");
  LinearRule r2 = LR("r(X) :- r(X), a(X).");
  EXPECT_FALSE(Compose(r1, r2).ok());
}

TEST(ComposeTest, RepeatedHeadVarsInInnerRejected) {
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto repeated = ParseLinearRule("p(X,X) :- p(X,Y), e(Y,X).");
  ASSERT_TRUE(repeated.ok());
  EXPECT_FALSE(Compose(r1, *repeated).ok());
}

TEST(PowerTest, PowerOneIsIdentity) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto p1 = Power(r, 1);
  ASSERT_TRUE(p1.ok());
  EXPECT_TRUE(AreEquivalent(p1->rule(), r.rule()));
}

TEST(PowerTest, PowerZeroRejected) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  EXPECT_FALSE(Power(r, 0).ok());
}

TEST(PowerTest, SquareOfTransitiveClosure) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto p2 = Power(r, 2);
  ASSERT_TRUE(p2.ok());
  auto expected = ParseLinearRule("p(X,Y) :- p(X,A), e(A,B), e(B,Y).");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(AreEquivalent(p2->rule(), expected->rule()));
}

TEST(PowerTest, PowerSemanticsMatchIteratedApplication) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(8);
  Relation q(2);
  q.Insert({0, 0});
  auto p3 = Power(r, 3);
  ASSERT_TRUE(p3.ok());
  auto once = ApplySum({*p3}, db, q);
  ASSERT_TRUE(once.ok());

  Relation iterated = q;
  for (int i = 0; i < 3; ++i) {
    auto next = ApplySum({r}, db, iterated);
    ASSERT_TRUE(next.ok());
    iterated = std::move(next).value();
  }
  EXPECT_EQ(*once, iterated);
}

TEST(PowerTest, MinimizingPowerKeepsEquivalence) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y), g(Y).");
  auto plain = Power(r, 3, /*minimize=*/false);
  auto reduced = Power(r, 3, /*minimize=*/true);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(reduced.ok());
  EXPECT_TRUE(AreEquivalent(plain->rule(), reduced->rule()));
  EXPECT_LE(reduced->rule().body().size(), plain->rule().body().size());
}

TEST(PowerTest, IdempotentRuleStabilizes) {
  // p(X) :- p(X), g(X) is idempotent: r^n ≡ r.
  LinearRule r = LR("p(X) :- p(X), g(X).");
  auto p4 = Power(r, 4);
  ASSERT_TRUE(p4.ok());
  EXPECT_TRUE(AreEquivalent(p4->rule(), r.rule()));
}

}  // namespace
}  // namespace linrec
