#include "datalog/equality.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/printer.h"
#include "datalog/traits.h"
#include "eval/fixpoint.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

Rule R(const std::string& text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

TEST(EqualityParseTest, InfixFormIsSugarForEqAtom) {
  Rule rule = R("p(X,Y) :- q(X,Y), X = Y.");
  ASSERT_EQ(rule.body().size(), 2u);
  EXPECT_EQ(rule.body()[1].predicate, kEqualityPredicate);
  EXPECT_TRUE(HasEqualities(rule));
}

TEST(EqualityParseTest, ConstantsOnEitherSide) {
  Rule a = R("p(X) :- q(X), X = 3.");
  Rule b = R("p(X) :- q(X), 3 = X.");
  EXPECT_TRUE(HasEqualities(a));
  EXPECT_TRUE(HasEqualities(b));
}

TEST(EqualityParseTest, MalformedInfixRejected) {
  EXPECT_FALSE(ParseRule("p(X) :- q(X), X = .").ok());
  EXPECT_FALSE(ParseRule("p(X) :- q(X), X =").ok());
  EXPECT_FALSE(ParseRule("p(X) :- q(X), X q(X).").ok());
}

TEST(NormalizeHeadTest, RepeatedHeadVarsSplit) {
  Rule rule = R("p(X,X) :- q(X).");
  EXPECT_TRUE(ComputeTraits(rule).repeated_head_vars);
  Rule normalized = NormalizeHeadVariables(rule);
  EXPECT_FALSE(ComputeTraits(normalized).repeated_head_vars);
  EXPECT_TRUE(HasEqualities(normalized));
  // Round trip through elimination gives back an equivalent rule.
  auto eliminated = EliminateEqualities(normalized);
  ASSERT_TRUE(eliminated.ok());
  ASSERT_TRUE(eliminated->has_value());
  EXPECT_TRUE(ComputeTraits(**eliminated).repeated_head_vars);
}

TEST(NormalizeHeadTest, DistinctHeadsUntouched) {
  Rule rule = R("p(X,Y) :- q(X,Y).");
  Rule normalized = NormalizeHeadVariables(rule);
  EXPECT_FALSE(HasEqualities(normalized));
  EXPECT_EQ(ToString(normalized), ToString(rule));
}

TEST(EliminateTest, VariableMerge) {
  Rule rule = R("p(X) :- q(X,Y), r(Z), Y = Z.");
  auto out = EliminateEqualities(rule);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  const Rule& e = **out;
  EXPECT_FALSE(HasEqualities(e));
  // q's second var and r's var are now the same variable.
  EXPECT_EQ(e.body()[0].terms[1], e.body()[1].terms[0]);
}

TEST(EliminateTest, ConstantSubstitution) {
  Rule rule = R("p(X) :- q(X,Y), Y = 5.");
  auto out = EliminateEqualities(rule);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  const Term& t = (*out)->body()[0].terms[1];
  ASSERT_TRUE(t.is_const());
  EXPECT_EQ(t.constant(), 5);
}

TEST(EliminateTest, TransitiveMergeWithConstant) {
  Rule rule = R("p(X) :- q(X,Y), Y = Z, Z = 7, r(Z).");
  auto out = EliminateEqualities(rule);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  for (const Atom& atom : (*out)->body()) {
    for (const Term& t : atom.terms) {
      if (&atom != &(*out)->body()[0] || &t != &atom.terms[0]) {
        // Everything except X became the constant 7 or stayed X.
      }
    }
  }
  EXPECT_TRUE((*out)->body()[1].terms[0].is_const());
  EXPECT_EQ((*out)->body()[1].terms[0].constant(), 7);
}

TEST(EliminateTest, UnsatisfiableConstants) {
  Rule rule = R("p(X) :- q(X), X = 1, X = 2.");
  auto out = EliminateEqualities(rule);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->has_value());
}

TEST(EliminateTest, UnsatisfiableLiteralConstants) {
  Rule rule = R("p(X) :- q(X), 1 = 2.");
  auto out = EliminateEqualities(rule);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->has_value());
}

TEST(EliminateTest, TrivialEqualityDropped) {
  Rule rule = R("p(X) :- q(X), X = X, 3 = 3.");
  auto out = EliminateEqualities(rule);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ((*out)->body().size(), 1u);
}

TEST(EliminateTest, MalformedEqualityRejected) {
  // eq with wrong arity, constructed manually via the parser atom form.
  Rule rule = R("p(X) :- q(X), eq(X).");
  auto out = EliminateEqualities(rule);
  EXPECT_FALSE(out.ok());
}

TEST(EqualityClosureTest, SelectionViaEquality) {
  // p(X,Y) :- p(X,Z), e(Z,Y), X = 0: closure restricted to X = 0.
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y), X = 0.");
  ASSERT_TRUE(lr.ok());
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(6);
  Relation q(2);
  q.Insert({0, 0});
  q.Insert({1, 1});
  auto out = SemiNaiveClosure({*lr}, db, q);
  ASSERT_TRUE(out.ok()) << out.status();
  // Only X = 0 tuples extend; (1,1) stays put.
  EXPECT_TRUE(out->Contains({0, 5}));
  for (TupleView t : *out) {
    if (t[0] == 1) {
      EXPECT_EQ(t[1], 1);
    }
  }
}

TEST(EqualityClosureTest, VariableEqualityJoins) {
  // Diagonal extraction: p(X,Y) :- p(U,V), e(X,Y), X = Y... the recursion
  // is a one-shot: derive all self-loop edges.
  auto lr = ParseLinearRule("p(X,Y) :- p(U,V), e(X,Y), X = Y.");
  ASSERT_TRUE(lr.ok());
  Database db;
  Relation& e = db.GetOrCreate("e", 2);
  e.Insert({1, 1});
  e.Insert({1, 2});
  e.Insert({3, 3});
  Relation q(2);
  q.Insert({9, 9});
  auto out = SemiNaiveClosure({*lr}, db, q);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Contains({1, 1}));
  EXPECT_TRUE(out->Contains({3, 3}));
  EXPECT_FALSE(out->Contains({1, 2}));
}

TEST(EqualityClosureTest, UnsatisfiableRuleContributesNothing) {
  auto lr = ParseLinearRule("p(X) :- p(X), g(X), 1 = 2.");
  ASSERT_TRUE(lr.ok());
  Database db;
  db.GetOrCreate("g", 1).Insert({0});
  Relation q(1);
  q.Insert({0});
  auto out = SemiNaiveClosure({*lr}, db, q);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, q);
}

TEST(EqualityClosureTest, ApplyRuleRejectsRawEqualities) {
  auto rule = R("p(X) :- q(X), X = 1.");
  Database db;
  db.GetOrCreate("q", 1).Insert({1});
  Relation out(1);
  Status st = ApplyRule(rule, db, {}, &out);
  EXPECT_FALSE(st.ok());
}

TEST(EqualityAnalysisTest, NormalizedRuleBecomesAnalyzable) {
  // p(X,X) :- p(X,Y), e(Y,X) cannot be analyzed directly (repeated head
  // vars); after normalization it can — the equality is just another
  // binary predicate in the α-graph.
  auto raw = ParseLinearRule("p(X,X) :- p(X,Y), e(Y,X).");
  ASSERT_TRUE(raw.ok());
  Rule normalized = NormalizeHeadVariables(raw->rule());
  auto lr = LinearRule::Make(normalized);
  ASSERT_TRUE(lr.ok());
  EXPECT_FALSE(ComputeTraits(lr->rule()).repeated_head_vars);
}

}  // namespace
}  // namespace linrec
