// Golden tests for Engine plan selection and plan/legacy execution
// equivalence: the planner must pick each of the paper's strategies
// exactly when its theorem licenses it.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "separability/algorithm.h"
#include "workload/databases.h"
#include "workload/graphs.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

/// Prepared-path execution of a fully specified query (seed and σ, if any,
/// attached to the Query): Prepare, re-bind the query's own seed(s), run.
Result<QueryResult> RunQuery(Engine& engine, const Query& query) {
  Result<PreparedQuery> prepared = engine.Prepare(query);
  if (!prepared.ok()) return prepared.status();
  BoundQuery bound = prepared->Bind();
  if (query.is_joint()) {
    if (query.has_seeds()) bound.BindSeeds(query.shared_seeds());
  } else if (query.has_seed()) {
    bound.BindSeed(query.shared_seed());
  }
  return engine.Execute(bound);
}

/// Same-generation pair (Example 5.2): the two operators commute.
LinearRule Down() { return LR("p(X,Y) :- p(X,V), down(V,Y)."); }
LinearRule Up() { return LR("p(X,Y) :- p(U,Y), up(X,U)."); }

Database SameGenDb() {
  Database db;
  Relation down = TreeGraph(/*branching=*/2, /*depth=*/5);
  Relation up(2);
  for (TupleView t : down) up.Insert({t[1], t[0]});
  db.GetOrCreate("down", 2) = std::move(down);
  db.GetOrCreate("up", 2) = std::move(up);
  return db;
}

Relation IdentitySeed(const Database& db) {
  Relation q(2);
  for (TupleView t : *db.Find("down")) {
    q.Insert({t[0], t[0]});
    q.Insert({t[1], t[1]});
  }
  return q;
}

TEST(EnginePlanTest, CommutingPairYieldsDecomposed) {
  Engine engine(SameGenDb());
  Relation q = IdentitySeed(engine.db());
  Query query = Query::Closure({Down(), Up()}).From(q);
  auto plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->strategy, Strategy::kDecomposed);
  EXPECT_EQ(plan->groups.size(), 2u);

  // Engine result equals the direct semi-naive closure of the sum.
  auto via_engine = RunQuery(engine, query);
  ASSERT_TRUE(via_engine.ok()) << via_engine.status();
  auto direct = SemiNaiveClosure({Down(), Up()}, engine.db(), q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_engine->relation(), *direct);
}

TEST(EnginePlanTest, NonCommutingPairFallsBackToSemiNaive) {
  // Inequivalent q-/rr-bridges: the pair does not commute
  // (tests/commutativity_test.cc, ClauseDInequivalentBridgesFail).
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  Engine engine;
  engine.db().GetOrCreate("q", 2) = ChainGraph(6);
  engine.db().GetOrCreate("rr", 2).Insert({2, 0});
  Relation seed(2);
  seed.Insert({0, 0});

  Query query = Query::Closure({r1, r2}).From(seed);
  auto plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->strategy, Strategy::kSemiNaive);
  EXPECT_TRUE(plan->groups.empty());

  auto via_engine = RunQuery(engine, query);
  ASSERT_TRUE(via_engine.ok());
  auto direct = SemiNaiveClosure({r1, r2}, engine.db(), seed);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_engine->relation(), *direct);
}

TEST(EnginePlanTest, PersistentSelectedColumnYieldsSeparable) {
  Engine engine(SameGenDb());
  Relation q = IdentitySeed(engine.db());
  // Position 0 is 1-persistent in Down() and not in Up(): A = {down rule},
  // B = {up rule}, and the pair commutes (Theorem 4.1).
  Selection sigma{0, q.Sorted().front()[0]};
  Query query = Query::Closure({Down(), Up()}).Select(sigma).From(q);
  auto plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->strategy, Strategy::kSeparable);
  EXPECT_TRUE(plan->selection_pushed);
  ASSERT_EQ(plan->outer.size(), 1u);
  ASSERT_EQ(plan->inner.size(), 1u);
  EXPECT_EQ(plan->outer[0], 0);
  EXPECT_EQ(plan->inner[0], 1);

  auto via_engine = RunQuery(engine, query);
  ASSERT_TRUE(via_engine.ok());
  auto direct =
      SeparableClosure({Down()}, {Up()}, sigma, engine.db(), q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_engine->relation(), *direct);
  auto filtered = ClosureThenSelect({Down()}, {Up()}, sigma, engine.db(), q);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(via_engine->relation(), *filtered);
}

TEST(EnginePlanTest, SelectionOnGeneralColumnIsPostFiltered) {
  // Position 1 is general in both forward-chaining rules: σ commutes with
  // neither, so there is no pushdown; the plan filters the final closure.
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  Engine engine;
  engine.db().GetOrCreate("q", 2) = ChainGraph(6);
  engine.db().GetOrCreate("rr", 2).Insert({2, 0});
  Relation q(2);
  q.Insert({0, 0});
  Selection sigma{1, 3};
  Query query = Query::Closure({r1, r2}).Select(sigma).From(q);
  auto plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->strategy, Strategy::kSeparable);
  EXPECT_FALSE(plan->selection_pushed);

  auto via_engine = RunQuery(engine, query);
  ASSERT_TRUE(via_engine.ok());
  auto closure = SemiNaiveClosure({r1, r2}, engine.db(), q);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(via_engine->relation(), ApplySelection(*closure, sigma));
}

TEST(EnginePlanTest, FullPushdownWhenSelectionCommutesWithEveryRule) {
  // Single TC rule, σ on the 1-persistent source column: inner group is
  // empty and the seed itself is filtered.
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(6);
  Relation q(2);
  for (int i = 0; i < 6; ++i) q.Insert({i, i});
  Selection sigma{0, 2};
  Query query = Query::Closure({tc}).Select(sigma).From(q);
  auto plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->strategy, Strategy::kSeparable);
  EXPECT_TRUE(plan->inner.empty());

  auto via_engine = RunQuery(engine, query);
  ASSERT_TRUE(via_engine.ok());
  auto closure = SemiNaiveClosure({tc}, engine.db(), q);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(via_engine->relation(), ApplySelection(*closure, sigma));
}

TEST(EnginePlanTest, UniformlyBoundedRuleYieldsPowerSum) {
  // r^2 ≡ r (idempotent guard): A* = Σ_{m<2} A^m.
  LinearRule r = LR("p(X) :- p(X), g(X).");
  Engine engine;
  engine.db().GetOrCreate("g", 1).Insert({1});
  engine.db().GetOrCreate("g", 1).Insert({2});
  Relation q(1);
  q.Insert({1});
  q.Insert({7});
  Query query = Query::Closure({r}).From(q);
  auto plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->strategy, Strategy::kPowerSum);
  EXPECT_EQ(plan->power_bound, 1);

  auto via_engine = RunQuery(engine, query);
  ASSERT_TRUE(via_engine.ok());
  auto direct = SemiNaiveClosure({r}, engine.db(), q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_engine->relation(), *direct);
}

TEST(EnginePlanTest, BoundedBridgeElidesRedundantPredicate) {
  // Example 6.1: endorses sits in a uniformly bounded bridge, so it is
  // recursively redundant and the plan elides it via the factorization.
  LinearRule rule =
      LR("buys(X,Y) :- knows(X,Z), buys(Z,Y), endorses(W,Y).");
  EndorsedBuysWorkload w = MakeEndorsedBuys(/*people=*/60, /*items=*/15,
                                            /*fanout=*/4,
                                            /*initial_buys=*/15, /*seed=*/3);
  Engine engine(std::move(w.db));
  Query query = Query::Closure({rule}).From(w.q);
  auto plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->strategy, Strategy::kSemiNaive);
  ASSERT_TRUE(plan->factorization.has_value());
  ASSERT_EQ(plan->elided_predicates.size(), 1u);
  EXPECT_EQ(plan->elided_predicates[0], "endorses");

  auto via_engine = RunQuery(engine, query);
  ASSERT_TRUE(via_engine.ok()) << via_engine.status();
  auto direct = SemiNaiveClosure({rule}, engine.db(), w.q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_engine->relation(), *direct);
}

TEST(EnginePlanTest, ExplainNamesStrategyAndTheorem) {
  Engine engine(SameGenDb());
  Relation q = IdentitySeed(engine.db());
  auto plan = engine.Plan(Query::Closure({Down(), Up()}).From(q));
  ASSERT_TRUE(plan.ok());
  std::string text = plan->Explain();
  EXPECT_NE(text.find("decomposed"), std::string::npos) << text;
  EXPECT_NE(text.find("Theorem 3.1"), std::string::npos) << text;
  EXPECT_NE(text.find("commute"), std::string::npos) << text;
}

TEST(EnginePlanTest, ExplainReportsParallelMode) {
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  q.Insert({0, 0});

  EngineOptions serial_options;
  serial_options.parallel_workers = 1;
  Engine serial_engine(Database{}, serial_options);
  auto serial_plan = serial_engine.Plan(Query::Closure({tc}).From(q));
  ASSERT_TRUE(serial_plan.ok());
  EXPECT_EQ(serial_plan->parallel_workers, 1);
  EXPECT_NE(serial_plan->Explain().find("parallel: serial"),
            std::string::npos)
      << serial_plan->Explain();

  EngineOptions parallel_options;
  parallel_options.parallel_workers = 8;
  Engine parallel_engine(Database{}, parallel_options);
  auto parallel_plan = parallel_engine.Plan(Query::Closure({tc}).From(q));
  ASSERT_TRUE(parallel_plan.ok());
  EXPECT_EQ(parallel_plan->parallel_workers, 8);
  std::string text = parallel_plan->Explain();
  EXPECT_NE(text.find("8 workers"), std::string::npos) << text;
  EXPECT_NE(text.find("Δ partitions"), std::string::npos) << text;
}

TEST(EngineOptionsTest, ZeroWorkersMeansHardwareConcurrencyNotSerial) {
  // The contract of common/parallel.h: 0 = one lane per hardware thread
  // (always at least 1), 1 = serial, explicit values taken literally.
  EXPECT_GE(ResolveWorkers(0), 1);
  EXPECT_EQ(ResolveWorkers(1), 1);
  EXPECT_EQ(ResolveWorkers(6), 6);
  EXPECT_EQ(ResolveWorkers(-3), 1);

  EngineOptions defaults;
  EXPECT_EQ(defaults.parallel_workers, 0);  // auto, not serial
  Engine engine;
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  q.Insert({0, 0});
  auto plan = engine.Plan(Query::Closure({tc}).From(q));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->parallel_workers, ResolveWorkers(0));
}

TEST(EngineForceTest, ForcedNaiveMatchesSemiNaive) {
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(5);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  for (int i = 0; i < 5; ++i) q.Insert({i, i});
  auto naive =
      RunQuery(engine, Query::Closure({tc}).From(q).Force(Strategy::kNaive));
  ASSERT_TRUE(naive.ok());
  auto semi = RunQuery(engine, Query::Closure({tc}).From(q));
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(naive->relation(), semi->relation());
}

TEST(EngineForceTest, ForcedPowerSumRequiresBound) {
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(5);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  q.Insert({0, 0});
  auto plan =
      engine.Plan(Query::Closure({tc}).From(q).Force(Strategy::kPowerSum));
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineCacheTest, AnalysisIsMemoized) {
  Engine engine;
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto first = engine.Analyze(tc);
  auto second = engine.Analyze(tc);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // same cached pointer
  EXPECT_EQ(engine.analysis_cache().rule_entries(), 1u);

  auto c1 = engine.Commutes(Down(), Up());
  auto c2 = engine.Commutes(Up(), Down());  // symmetric: one cache entry
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1->commute, c2->commute);
  EXPECT_EQ(engine.analysis_cache().pair_entries(), 1u);
}

TEST(EngineCacheTest, StatsAccumulateAcrossQueries) {
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(5);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  q.Insert({0, 0});
  ASSERT_TRUE(RunQuery(engine, Query::Closure({tc}).From(q)).ok());
  std::size_t after_one = engine.stats().derivations;
  ASSERT_TRUE(RunQuery(engine, Query::Closure({tc}).From(q)).ok());
  EXPECT_GT(engine.stats().derivations, after_one);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().derivations, 0u);
}

TEST(EngineCacheTest, IndexCacheDoesNotAccumulateTemporaries) {
  // Every Execute builds indexes over per-call temporaries (Δs, the seed);
  // the engine must evict them so a long-lived engine stays bounded.
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(8);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  q.Insert({0, 0});
  ASSERT_TRUE(RunQuery(engine, Query::Closure({tc}).From(q)).ok());
  std::size_t after_one = engine.index_cache().entry_count();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(RunQuery(engine, Query::Closure({tc}).From(q)).ok());
  }
  EXPECT_EQ(engine.index_cache().entry_count(), after_one);
}

TEST(EnginePlanCacheTest, RepeatQueriesSkipPlanning) {
  Engine engine(SameGenDb());
  Relation q = IdentitySeed(engine.db());
  auto first = engine.Plan(Query::Closure({Down(), Up()}).From(q));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->from_plan_cache);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
  EXPECT_EQ(engine.plan_cache_hits(), 0u);

  auto second = engine.Plan(Query::Closure({Down(), Up()}).From(q));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->from_plan_cache);
  EXPECT_EQ(second->strategy, first->strategy);
  EXPECT_EQ(second->groups, first->groups);
  EXPECT_EQ(engine.plan_cache_hits(), 1u);

  // The cached plan executes identically.
  auto out1 = RunQuery(engine, Query::Closure({Down(), Up()}).From(q));
  auto out2 = RunQuery(engine, Query::Closure({Down(), Up()}).From(q));
  ASSERT_TRUE(out1.ok());
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out1->relation(), out2->relation());

  // Introducing a σ changes the structural digest: planned from scratch.
  auto with_sigma = engine.Plan(
      Query::Closure({Down(), Up()}).Select(Selection{0, 3}).From(q));
  ASSERT_TRUE(with_sigma.ok()) << with_sigma.status();
  EXPECT_FALSE(with_sigma->from_plan_cache);
  EXPECT_EQ(engine.plan_cache_misses(), 2u);

  // ...but the σ *value* is not part of the digest (plans are
  // σ-parameterized): a different constant at the same position is a hit,
  // with the new value re-bound into the served plan.
  auto other_value = engine.Plan(
      Query::Closure({Down(), Up()}).Select(Selection{0, 7}).From(q));
  ASSERT_TRUE(other_value.ok()) << other_value.status();
  EXPECT_TRUE(other_value->from_plan_cache);
  ASSERT_TRUE(other_value->selection.has_value());
  EXPECT_EQ(other_value->selection->value, 7);
  EXPECT_FALSE(other_value->sigma_parameterized);
  EXPECT_EQ(engine.plan_cache_misses(), 2u);

  // A different σ *position* is structural: planned from scratch.
  auto other_position = engine.Plan(
      Query::Closure({Down(), Up()}).Select(Selection{1, 3}).From(q));
  ASSERT_TRUE(other_position.ok()) << other_position.status();
  EXPECT_FALSE(other_position->from_plan_cache);
  EXPECT_EQ(engine.plan_cache_misses(), 3u);
}

TEST(EnginePlanCacheTest, CachedPlanServesFreshSeeds) {
  // The digest excludes the seed, so one cached plan answers every From().
  Engine engine(SameGenDb());
  Relation q1 = IdentitySeed(engine.db());
  ASSERT_TRUE(RunQuery(engine, Query::Closure({Down(), Up()}).From(q1)).ok());
  Relation q2(2);
  q2.Insert({3, 3});
  auto plan = engine.Plan(Query::Closure({Down(), Up()}).From(q2));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->from_plan_cache);
  ASSERT_NE(plan->seed, nullptr);
  EXPECT_EQ(plan->seed->size(), 1u);  // the new seed, not the cached query's
  auto out = RunQuery(engine, Query::Closure({Down(), Up()}).From(q2));
  ASSERT_TRUE(out.ok()) << out.status();
  auto direct = SemiNaiveClosure({Down(), Up()}, engine.db(), q2);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(out->relation(), *direct);
}

TEST(EnginePlanCacheTest, DisabledByOption) {
  EngineOptions options;
  options.enable_plan_cache = false;
  Engine engine(SameGenDb(), options);
  Relation q = IdentitySeed(engine.db());
  ASSERT_TRUE(engine.Plan(Query::Closure({Down(), Up()}).From(q)).ok());
  auto again = engine.Plan(Query::Closure({Down(), Up()}).From(q));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->from_plan_cache);
  EXPECT_EQ(engine.plan_cache_size(), 0u);
}

TEST(EngineParallelTest, ParallelWorkersMatchSequentialResult) {
  EngineOptions parallel_options;
  parallel_options.parallel_workers = 4;
  Engine parallel_engine(SameGenDb(), parallel_options);
  Relation q = IdentitySeed(parallel_engine.db());
  auto parallel_out =
      RunQuery(parallel_engine, Query::Closure({Down(), Up()}).From(q));
  ASSERT_TRUE(parallel_out.ok()) << parallel_out.status();

  EngineOptions sequential_options;
  sequential_options.parallel_workers = 1;
  Engine sequential_engine(SameGenDb(), sequential_options);
  auto sequential_out =
      RunQuery(sequential_engine, Query::Closure({Down(), Up()}).From(q));
  ASSERT_TRUE(sequential_out.ok()) << sequential_out.status();
  EXPECT_EQ(parallel_out->relation(), sequential_out->relation());
}

TEST(EnginePlanCacheTest, FifoEvictsOldestSingleEntry) {
  // At capacity the cache drops exactly the oldest entry — earlier
  // versions cleared the whole cache, cold-starting every hot plan.
  EngineOptions options;
  options.plan_cache_capacity = 2;
  Engine engine(Database{}, options);
  Relation q(2);
  q.Insert({0, 0});
  Query a = Query::Closure({LR("p(X,Y) :- p(X,Z), ea(Z,Y).")}).From(q);
  Query b = Query::Closure({LR("p(X,Y) :- p(X,Z), eb(Z,Y).")}).From(q);
  Query c = Query::Closure({LR("p(X,Y) :- p(X,Z), ec(Z,Y).")}).From(q);

  ASSERT_TRUE(engine.Plan(a).ok());  // miss: {a}
  ASSERT_TRUE(engine.Plan(b).ok());  // miss: {a, b}
  EXPECT_EQ(engine.plan_cache_misses(), 2u);
  EXPECT_TRUE(engine.Plan(a)->from_plan_cache);  // hit, a stays cached
  EXPECT_EQ(engine.plan_cache_hits(), 1u);

  ASSERT_TRUE(engine.Plan(c).ok());  // miss; evicts only a (the oldest)
  EXPECT_EQ(engine.plan_cache_misses(), 3u);
  EXPECT_EQ(engine.plan_cache_size(), 2u);
  EXPECT_TRUE(engine.Plan(b)->from_plan_cache);  // b survived the insert
  EXPECT_TRUE(engine.Plan(c)->from_plan_cache);
  EXPECT_EQ(engine.plan_cache_hits(), 3u);

  EXPECT_FALSE(engine.Plan(a)->from_plan_cache);  // a was the one evicted
  EXPECT_EQ(engine.plan_cache_misses(), 4u);
  EXPECT_EQ(engine.plan_cache_size(), 2u);
}

TEST(EnginePlanCacheTest, ZeroCapacityDisablesCaching) {
  EngineOptions options;
  options.plan_cache_capacity = 0;
  Engine engine(Database{}, options);
  Relation q(2);
  q.Insert({0, 0});
  Query query = Query::Closure({LR("p(X,Y) :- p(X,Z), e(Z,Y).")}).From(q);
  ASSERT_TRUE(engine.Plan(query).ok());
  EXPECT_FALSE(engine.Plan(query)->from_plan_cache);
  EXPECT_EQ(engine.plan_cache_size(), 0u);
}

TEST(EngineExecuteTest, RejectsOutOfRangeSelectionPosition) {
  // Engine-boundary validation: an out-of-range σ position must fail with
  // InvalidArgument at Prepare, not reach WhereEquals as UB in NDEBUG
  // builds.
  Engine engine;
  engine.db().GetOrCreate("e", 2) = ChainGraph(4);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  Relation q(2);
  q.Insert({0, 0});

  auto out_of_range = engine.Prepare(Query::Closure({tc}).SelectPosition(5));
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.Prepare(Query::Closure({tc}).SelectPosition(-1)).ok());

  // An in-range selection still executes.
  auto prepared = engine.Prepare(Query::Closure({tc}).SelectPosition(0));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_TRUE(engine.Execute(prepared->Bind(0).BindSeed(q)).ok());
}

TEST(EngineJointTest, JointQueryPlansAndExecutes) {
  auto w = MakeEvenOddChain(8);
  ASSERT_TRUE(w.ok()) << w.status();
  Engine engine(std::move(w->db));
  Query query = Query::JointClosure(w->members, w->rules).FromSeeds(w->seeds);
  auto plan = engine.Plan(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->strategy, Strategy::kJointSemiNaive);
  std::string text = plan->Explain();
  EXPECT_NE(text.find("joint-semi-naive"), std::string::npos) << text;
  EXPECT_NE(text.find("even, odd"), std::string::npos) << text;
  EXPECT_NE(text.find("Δ source"), std::string::npos) << text;

  // Joint plans refuse a single-relation seed binding...
  auto prepared = engine.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  Relation q(2);
  q.Insert({0, 0});
  auto wrong = engine.Execute(prepared->Bind().BindSeed(q));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  // ...and non-joint plans refuse per-member seeds.
  auto single =
      engine.Prepare(Query::Closure({LR("p(X,Y) :- p(X,Z), succ(Z,Y).")}));
  ASSERT_TRUE(single.ok());
  EXPECT_FALSE(
      engine.Execute(single->Bind().BindSeeds(w->seeds)).ok());

  auto out = engine.Execute(prepared->Bind().BindSeeds(w->seeds));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->joint);
  ASSERT_EQ(out->relations.size(), 2u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out->relations[0].Contains({i}), i % 2 == 0) << i;
    EXPECT_EQ(out->relations[1].Contains({i}), i % 2 == 1) << i;
  }
  EXPECT_GT(engine.stats().derivations, 0u);
}

TEST(EngineJointTest, JointPlansAreCachedSeedless) {
  auto w = MakeEvenOddChain(6);
  ASSERT_TRUE(w.ok());
  Engine engine(std::move(w->db));
  Query query = Query::JointClosure(w->members, w->rules).FromSeeds(w->seeds);
  auto first = engine.Plan(query);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->from_plan_cache);

  // Same members + rules with fresh seeds: a hit, seeds re-attached.
  std::vector<Relation> fresh;
  fresh.emplace_back(1);
  fresh.back().Insert({2});
  fresh.emplace_back(1);
  auto second = engine.Plan(
      Query::JointClosure(w->members, w->rules).FromSeeds(std::move(fresh)));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->from_plan_cache);
  ASSERT_NE(second->joint_seeds, nullptr);
  EXPECT_EQ((*second->joint_seeds)[0].size(), 1u);
  std::vector<Relation> rebind;
  rebind.emplace_back(1);
  rebind.back().Insert({2});
  rebind.emplace_back(1);
  auto prepared = engine.Prepare(query);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto out =
      engine.Execute(prepared->Bind().BindSeeds(std::move(rebind)));
  ASSERT_TRUE(out.ok()) << out.status();
  // Seeded from 2 instead of 0: evens are {2,4}, odds {3,5}.
  EXPECT_TRUE(out->relations[0].Contains({4}));
  EXPECT_FALSE(out->relations[0].Contains({0}));
}

TEST(EngineJointTest, JointValidationErrors) {
  auto w = MakeEvenOddChain(6);
  ASSERT_TRUE(w.ok());
  Engine engine;

  // Selections and Force are not supported on joint queries.
  {
    Query query =
        Query::JointClosure(w->members, w->rules).FromSeeds(w->seeds);
    query.Select(Selection{0, 1});
    EXPECT_FALSE(engine.Plan(query).ok());
  }
  // Seed count must match member count.
  {
    std::vector<Relation> one_seed;
    one_seed.emplace_back(1);
    Query query = Query::JointClosure(w->members, w->rules)
                      .FromSeeds(std::move(one_seed));
    EXPECT_FALSE(engine.Plan(query).ok());
  }
  // No seeds at all.
  EXPECT_FALSE(
      engine.Plan(Query::JointClosure(w->members, w->rules)).ok());
  // A rule reading two member atoms is non-linear joint recursion.
  {
    auto bad_rule = ParseRule("even(X) :- odd(X), even(X), succ(X,X).");
    ASSERT_TRUE(bad_rule.ok());
    std::vector<JointRule> rules = w->rules;
    rules.push_back(JointRule{*bad_rule, 0, 0, 1});
    Query query =
        Query::JointClosure(w->members, std::move(rules)).FromSeeds(w->seeds);
    auto plan = engine.Plan(query);
    ASSERT_FALSE(plan.ok());
    EXPECT_NE(plan.status().message().find("exactly one member atom"),
              std::string::npos)
        << plan.status().message();
  }
  // Duplicate member names.
  {
    Query query = Query::JointClosure({"even", "even"}, w->rules)
                      .FromSeeds(w->seeds);
    EXPECT_FALSE(engine.Plan(query).ok());
  }
  // FromSeeds on a single-predicate closure is rejected, not ignored.
  {
    Relation q(2);
    q.Insert({0, 0});
    Query query =
        Query::Closure({LR("p(X,Y) :- p(X,Z), succ(Z,Y).")}).From(q);
    query.FromSeeds(w->seeds);
    EXPECT_FALSE(engine.Plan(query).ok());
  }
}

TEST(EngineQueryTest, ValidationErrors) {
  Engine engine;
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  // No seed.
  EXPECT_FALSE(engine.Plan(Query::Closure({tc})).ok());
  // Arity mismatch.
  Relation bad(3);
  bad.Insert({1, 2, 3});
  EXPECT_FALSE(engine.Plan(Query::Closure({tc}).From(bad)).ok());
  // Mixed head predicates.
  LinearRule other = LR("r(X,Y) :- r(X,Z), e(Z,Y).");
  Relation q(2);
  EXPECT_FALSE(engine.Plan(Query::Closure({tc, other}).From(q)).ok());
  // Selection position out of range.
  EXPECT_FALSE(
      engine.Plan(Query::Closure({tc}).Select(Selection{5, 0}).From(q)).ok());
  // No rules.
  EXPECT_FALSE(engine.Plan(Query::Closure({}).From(q)).ok());
}

}  // namespace
}  // namespace linrec
