#include "separability/separable.h"

#include <gtest/gtest.h>

#include "commutativity/oracle.h"
#include "datalog/parser.h"
#include "separability/algorithm.h"
#include "workload/databases.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

TEST(SeparableTest, SameGenerationPairIsSeparable) {
  // The canonical separable pair: up-side and down-side of same-generation.
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  auto report = CheckSeparable(r1, r2);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->separable) << report->detail;
  EXPECT_TRUE(report->cond_var_sets_disjoint);
}

TEST(SeparableTest, Example53CommutativeButNotSeparable) {
  // Theorem 6.2's strictness witness: Example 5.3 commutes but violates
  // conditions (2) and (3).
  LinearRule r1 = LR("p(X,Y,Z) :- p(U,Y,Z), q(X,Y).");
  LinearRule r2 = LR("p(X,Y,Z) :- p(X,Y,U), rr(Z,Y).");
  auto report = CheckSeparable(r1, r2);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->separable) << report->detail;
  auto commute = Commute(r1, r2);
  ASSERT_TRUE(commute.ok());
  EXPECT_TRUE(*commute);
}

TEST(SeparableTest, SeparableImpliesCommutative) {
  // Theorem 6.2 on several separable pairs.
  const std::pair<const char*, const char*> pairs[] = {
      {"p(X,Y) :- p(X,V), down(V,Y).", "p(X,Y) :- p(U,Y), up(X,U)."},
      {"p(X,Y) :- p(X,V), a(V,Y).", "p(X,Y) :- p(U,Y), b(X,U)."},
  };
  for (const auto& [t1, t2] : pairs) {
    LinearRule r1 = LR(t1);
    LinearRule r2 = LR(t2);
    auto report = CheckSeparable(r1, r2);
    ASSERT_TRUE(report.ok());
    if (report->separable) {
      auto commute = Commute(r1, r2);
      ASSERT_TRUE(commute.ok());
      EXPECT_TRUE(*commute) << t1 << " | " << t2;
    }
  }
}

TEST(SeparableTest, PersistenceConditionViolated) {
  // h(X) = Y distinguished and != X: condition (1) fails.
  LinearRule r1 = LR("p(X,Y) :- p(Y,X), q(X,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  auto report = CheckSeparable(r1, r2);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->cond_persistence);
  EXPECT_FALSE(report->separable);
}

TEST(SelectionCommutesTest, PersistentPositionCommutes) {
  LinearRule r = LR("p(X,Y) :- p(X,V), down(V,Y).");
  auto on_x = SelectionCommutesWith(r, Selection{0, 5});
  auto on_y = SelectionCommutesWith(r, Selection{1, 5});
  ASSERT_TRUE(on_x.ok());
  ASSERT_TRUE(on_y.ok());
  EXPECT_TRUE(*on_x);   // X is 1-persistent
  EXPECT_FALSE(*on_y);  // Y changes per application
}

TEST(SelectionCommutesTest, OutOfRangeRejected) {
  LinearRule r = LR("p(X,Y) :- p(X,V), down(V,Y).");
  EXPECT_FALSE(SelectionCommutesWith(r, Selection{2, 5}).ok());
  EXPECT_FALSE(SelectionCommutesWith(r, Selection{-1, 5}).ok());
}

TEST(SeparableClosureTest, MatchesClosureThenSelect) {
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w = MakeSameGeneration(5, 8, 2, 11);
  // Select on X = some seed node; σ commutes with r1 (X 1-persistent).
  Value target = w.q.Sorted().front()[0];
  Selection sigma{0, target};

  // σ on X commutes with r1 (X is 1-persistent there), so r1 is the outer
  // closure: σ(r1+r2)* = r1*(σ(r2*)).
  ClosureStats fast_stats;
  auto fast = SeparableClosure({r1}, {r2}, sigma, w.db, w.q, &fast_stats);
  ASSERT_TRUE(fast.ok()) << fast.status();

  ClosureStats slow_stats;
  auto slow = ClosureThenSelect({r1}, {r2}, sigma, w.db, w.q, &slow_stats);
  ASSERT_TRUE(slow.ok());

  EXPECT_EQ(*fast, *slow);
  EXPECT_FALSE(fast->empty());
  // The pushed-down evaluation derives no more tuples than the full one.
  EXPECT_LE(fast_stats.derivations, slow_stats.derivations);
}

TEST(SeparableClosureTest, EmptySelectionGivesEmptyResult) {
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w = MakeSameGeneration(4, 4, 2, 12);
  Selection sigma{0, 999999};  // matches nothing
  auto out = SeparableClosure({r1}, {r2}, sigma, w.db, w.q);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(SeparableClosureTest, NonCommutingSelectionRejected) {
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w = MakeSameGeneration(4, 4, 2, 13);
  // σ on position 1 does not commute with r1 (Y is general in r1), so r1
  // cannot be the outer closure.
  auto out = SeparableClosure({r1}, {r2}, Selection{1, 0}, w.db, w.q);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(SeparableClosureTest, NonCommutingOperatorsRejected) {
  LinearRule r1 = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  Database db;
  Relation q(2);
  q.Insert({0, 0});
  auto out = SeparableClosure({r1}, {r2}, Selection{0, 0}, db, q);
  EXPECT_FALSE(out.ok());
}

TEST(SeparableClosureTest, SelectionOnOtherSide) {
  // σ on Y commutes with r2 (Y 1-persistent there): r2 is the outer closure.
  LinearRule r1 = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule r2 = LR("p(X,Y) :- p(U,Y), up(X,U).");
  SameGenerationWorkload w = MakeSameGeneration(5, 8, 2, 14);
  Value target = w.q.Sorted().front()[1];
  Selection sigma{1, target};
  auto fast = SeparableClosure({r2}, {r1}, sigma, w.db, w.q);
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto slow = ClosureThenSelect({r2}, {r1}, sigma, w.db, w.q);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(*fast, *slow);
}

}  // namespace
}  // namespace linrec
