// Deterministic fault-injection tests: the injector's exact-nth and seeded
// schedules, and injection coverage for the in-engine sites — every armed
// fault must surface as a *typed* Status (never a crash, never a mangled
// relation), the engine must keep serving afterwards, and a fixed schedule
// must abort at the same hit in every build mode.

#include "common/fault.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/memory.h"
#include "datalog/parser.h"
#include "engine/engine.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

/// An engine over a chain graph with the usual tc rule, built *before* any
/// fault is armed (relation construction hits kPoolGrowth too).
Engine ChainEngine(int n, int workers = 1) {
  EngineOptions options;
  options.parallel_workers = workers;
  Engine engine(Database{}, options);
  engine.db().GetOrCreate("e", 2) = ChainGraph(n);
  return engine;
}

Relation SeedZero() {
  Relation q(2);
  q.Insert({0, 0});
  return q;
}

TEST(FaultInjectorTest, ArmAtFiresExactlyOnNthHit) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.ArmAt(FaultSite::kRehash, 3);
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kRehash));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kRehash));
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kRehash));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kRehash));
  // Other sites never fire under an nth-hit arm.
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kPoolGrowth));
  EXPECT_EQ(injector.hits(FaultSite::kRehash), 4u);
  EXPECT_EQ(injector.fired(FaultSite::kRehash), 1u);
  EXPECT_EQ(injector.last_fired_hit(FaultSite::kRehash), 3u);
  injector.Disarm();
  // Disarmed sites neither fire nor count.
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kRehash));
  EXPECT_EQ(injector.hits(FaultSite::kRehash), 4u);
}

TEST(FaultInjectorTest, SeededScheduleReplaysExactly) {
  FaultInjector& injector = FaultInjector::Instance();
  auto schedule = [&](std::uint64_t seed) {
    injector.ArmSeeded(seed, 7);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(injector.ShouldFire(FaultSite::kWorkerDispatch));
    }
    injector.Disarm();
    return fires;
  };
  const std::vector<bool> first = schedule(42);
  const std::vector<bool> second = schedule(42);
  EXPECT_EQ(first, second);
  // The schedule actually fires somewhere, and a different seed differs.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(first, schedule(43));
}

TEST(FaultInjectorTest, ScopedFaultDisarmsOnScopeExit) {
  {
    ScopedFault fault(FaultSite::kSocketWrite, 1);
    EXPECT_TRUE(FaultFires(FaultSite::kSocketWrite));
  }
  EXPECT_FALSE(FaultFires(FaultSite::kSocketWrite));
}

TEST(FaultInjectionTest, PoolGrowthFaultSurfacesAsResourceExhausted) {
  Engine engine = ChainEngine(32);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  Relation seed = SeedZero();
  {
    ScopedFault fault(FaultSite::kPoolGrowth, 1);
    auto result = engine.Execute(prepared->Bind().BindSeed(seed));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status();
  }
  // The engine keeps serving: the same prepared query now succeeds and
  // matches an untouched engine's answer bit for bit.
  auto after = engine.Execute(prepared->Bind().BindSeed(seed));
  ASSERT_TRUE(after.ok()) << after.status();
  Engine fresh = ChainEngine(32);
  auto clean = fresh.Execute(
      fresh.Prepare(Query::Closure({tc}))->Bind().BindSeed(seed));
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(after->relation(), clean->relation());
}

TEST(FaultInjectionTest, RehashFaultSurfacesAsResourceExhausted) {
  Engine engine = ChainEngine(64);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  ScopedFault fault(FaultSite::kRehash, 2);
  auto result = engine.Execute(prepared->Bind().BindSeed(SeedZero()));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
}

TEST(FaultInjectionTest, WorkerDispatchFaultSurfacesAsTypedInternal) {
  // Real worker threads: the chunk lambda observes the armed fault and
  // fails its lane with a typed status that wins the round's merge. The
  // identity seed keeps every round's Δ above kSerialRowThreshold, so the
  // chunked (pool) path actually runs — unless the host has a single
  // hardware thread, in which case the pool (correctly) never fans out and
  // the site is unreachable.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "worker-dispatch site needs a multi-core host";
  }
  Engine engine = ChainEngine(512, /*workers=*/4);
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto prepared = engine.Prepare(Query::Closure({tc}));
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  Relation seed(2);
  for (Value i = 0; i < 512; ++i) seed.Insert({i, i});
  {
    ScopedFault fault(FaultSite::kWorkerDispatch, 1);
    auto result = engine.Execute(prepared->Bind().BindSeed(seed));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal)
        << result.status();
    EXPECT_NE(result.status().message().find("injected worker fault"),
              std::string::npos)
        << result.status();
  }
  auto after = engine.Execute(prepared->Bind().BindSeed(seed));
  ASSERT_TRUE(after.ok()) << after.status();
}

TEST(FaultInjectionTest, FixedScheduleAbortsAtTheSameHitEveryRun) {
  // The reproducibility contract behind `--fault-seed`: one seed, one abort
  // point — across runs (and, by the same determinism, across build modes).
  LinearRule tc = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  // (aborted, pool-growth abort hit, rehash abort hit) of one seeded run.
  struct AbortPoint {
    bool aborted = false;
    std::uint64_t pool_hit = 0;
    std::uint64_t rehash_hit = 0;
    bool operator==(const AbortPoint& o) const {
      return aborted == o.aborted && pool_hit == o.pool_hit &&
             rehash_hit == o.rehash_hit;
    }
  };
  auto run = [&](std::uint64_t seed) -> AbortPoint {
    Engine engine = ChainEngine(256);
    auto prepared = engine.Prepare(Query::Closure({tc}));
    EXPECT_TRUE(prepared.ok()) << prepared.status();
    // Seed rows are inserted before arming: only *execution* growth may
    // observe the schedule, as in the daemon (--fault-seed arms at boot,
    // before any session holds relations — but the schedule's hit counts
    // must come from evaluation to be comparable across runs).
    BoundQuery bound = prepared->Bind().BindSeed(SeedZero());
    FaultInjector::Instance().ArmSeeded(seed, /*period=*/5);
    auto result = engine.Execute(bound);
    FaultInjector::Instance().Disarm();
    AbortPoint point;
    point.aborted =
        !result.ok() &&
        result.status().code() == StatusCode::kResourceExhausted;
    point.pool_hit =
        FaultInjector::Instance().last_fired_hit(FaultSite::kPoolGrowth);
    point.rehash_hit =
        FaultInjector::Instance().last_fired_hit(FaultSite::kRehash);
    return point;
  };
  // Seeded firing is probabilistic per seed (1/period per hit), so pick the
  // first of a handful of fixed seeds that aborts; the *contract* is that
  // replaying that seed aborts at the identical hit.
  std::uint64_t chosen = 0;
  AbortPoint first;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    first = run(seed);
    if (first.aborted) {
      chosen = seed;
      break;
    }
  }
  ASSERT_NE(chosen, 0u) << "no seed in 1..32 fired within the run";
  EXPECT_TRUE(first.pool_hit != 0 || first.rehash_hit != 0);
  EXPECT_EQ(run(chosen), first);
  EXPECT_EQ(run(chosen), first);
}

}  // namespace
}  // namespace linrec
