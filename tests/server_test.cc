// End-to-end tests for the linrecd front door (src/server/): the text
// protocol, LOAD-block compilation through the shared program registry,
// pipelined query batches, per-session deadline and row-cap limits,
// admission control, and the plan-cache-miss=1 guarantee across N
// concurrent sessions submitting the same program.

#include "server/server.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"

namespace linrec {
namespace {

/// The transitive closure of the chain 1→2→3→4 (6 result rows).
const char* kTcProgram =
    "edge(1, 2). edge(2, 3). edge(3, 4).\n"
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";

/// Drives `lines` through HandleLine one at a time, collecting replies.
std::vector<std::string> Drive(Server& server, Session& session,
                               const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  for (const std::string& line : lines) server.HandleLine(session, line, &out);
  return out;
}

/// LOADs `program` into `session`, expecting an "OK loaded" reply.
void Load(Server& server, Session& session, const std::string& program) {
  std::vector<std::string> out;
  server.HandleLine(session, "LOAD", &out);
  for (std::size_t begin = 0; begin <= program.size();) {
    std::size_t end = program.find('\n', begin);
    if (end == std::string::npos) end = program.size();
    server.HandleLine(session, program.substr(begin, end - begin), &out);
    begin = end + 1;
  }
  server.HandleLine(session, "END", &out);
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.front().rfind("OK loaded", 0), 0u) << out.front();
}

bool IsErr(const std::string& reply, const std::string& code) {
  return reply.rfind(StrCat("ERR ", code), 0) == 0;
}

TEST(ServerTest, FactAndQueryRoundTrip) {
  Server server;
  auto session = server.NewSession();
  Load(server, *session, kTcProgram);

  std::vector<std::string> out =
      Drive(server, *session, {"?- tc(X, Y)."});
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), "RESULT tc/2 rows=6 truncated=0");
  EXPECT_EQ(out.back(), ".");
  EXPECT_EQ(out.size(), 8u);  // header + 6 rows + terminator

  // σ bind on each position, and a repeated-variable goal.
  out = Drive(server, *session, {"?- tc(1, Y)."});
  EXPECT_EQ(out.front(), "RESULT tc/2 rows=3 truncated=0");
  out = Drive(server, *session, {"?- tc(X, 4)."});
  EXPECT_EQ(out.front(), "RESULT tc/2 rows=3 truncated=0");
  out = Drive(server, *session, {"?- tc(X, X)."});
  EXPECT_EQ(out.front(), "RESULT tc/2 rows=0 truncated=0");

  // Incremental FACT invalidates prior materialization.
  out = Drive(server, *session, {"FACT edge(4, 5).", "?- tc(1, Y)."});
  EXPECT_EQ(out.front(), "OK fact");
  EXPECT_EQ(out[1], "RESULT tc/2 rows=4 truncated=0");
}

TEST(ServerTest, MalformedProgramRepliesErrorAndServerSurvives) {
  Server server;
  auto session = server.NewSession();
  std::vector<std::string> out = Drive(
      server, *session, {"LOAD", "this is not datalog(", "END"});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(IsErr(out.front(), "ParseError")) << out.front();

  // Nonlinear rules are rejected at compile time, not at parse time.
  out = Drive(server, *session,
              {"LOAD", "p(X, Y) :- p(X, Z), p(Z, Y).", "END"});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(IsErr(out.front(), "InvalidArgument")) << out.front();

  // The session (and server) keep serving after both failures.
  Load(server, *session, kTcProgram);
  out = Drive(server, *session, {"?- tc(1, Y)."});
  EXPECT_EQ(out.front(), "RESULT tc/2 rows=3 truncated=0");
}

TEST(ServerTest, UnknownCommandAndBadClausesReplyError) {
  Server server;
  auto session = server.NewSession();
  std::vector<std::string> out = Drive(
      server, *session,
      {"FROBNICATE", "FACT tc(X, 1).", "?- tc(1, Y", "END", "% comment", ""});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(IsErr(out[0], "InvalidArgument"));  // unknown command
  EXPECT_TRUE(IsErr(out[1], "ParseError"));       // non-ground fact
  EXPECT_TRUE(IsErr(out[2], "ParseError"));       // unterminated goal
  EXPECT_TRUE(IsErr(out[3], "InvalidArgument"));  // END outside LOAD
}

TEST(ServerTest, DeadlineExpiryRepliesWithoutKillingOtherQueries) {
  Server server;
  auto session = server.NewSession();
  Load(server, *session, kTcProgram);

  // timeout_ms=0 arms an already-expired token: the closure's first round
  // boundary observes it deterministically.
  std::vector<std::string> out = Drive(
      server, *session, {"SET timeout_ms 0", "?- tc(X, Y)."});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "OK set timeout_ms=0");
  EXPECT_TRUE(IsErr(out[1], "DeadlineExceeded")) << out[1];

  // A batch neighbour on a fresh session is untouched by the expiry.
  auto other = server.NewSession();
  Load(server, *other, kTcProgram);
  out = Drive(server, *other, {"?- tc(X, Y)."});
  EXPECT_EQ(out.front(), "RESULT tc/2 rows=6 truncated=0");

  // Disarming the deadline restores service on the same session too.
  out = Drive(server, *session, {"SET timeout_ms -1", "?- tc(X, Y)."});
  EXPECT_EQ(out[0], "OK set timeout_ms=-1");
  EXPECT_EQ(out[1], "RESULT tc/2 rows=6 truncated=0");
}

TEST(ServerTest, ResultCapTruncationIsFlagged) {
  Server server;
  auto session = server.NewSession();
  Load(server, *session, kTcProgram);
  std::vector<std::string> out = Drive(
      server, *session, {"SET max_rows 2", "?- tc(X, Y)."});
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], "OK set max_rows=2");
  EXPECT_EQ(out[1], "RESULT tc/2 rows=2 truncated=1");
  EXPECT_EQ(out[4], ".");

  // Raising the cap restores the full result.
  out = Drive(server, *session, {"SET max_rows 100", "?- tc(X, Y)."});
  EXPECT_EQ(out[1], "RESULT tc/2 rows=6 truncated=0");
}

TEST(ServerTest, PipelinedQueryLinesKeepReplyOrder) {
  Server server;
  auto session = server.NewSession();
  Load(server, *session, kTcProgram);
  std::vector<std::string> out;
  server.SubmitQueryLines(
      *session,
      {"?- tc(1, Y).", "?- tc(1, Y", "?- tc(X, 4).", "?- nope(X)."},
      &out);
  // Slot 0: 3 rows; slot 1: parse error in place; slot 2: 3 rows;
  // slot 3: unknown predicate.
  ASSERT_EQ(out.size(), 12u);
  EXPECT_EQ(out[0], "RESULT tc/2 rows=3 truncated=0");
  EXPECT_EQ(out[4], ".");
  EXPECT_TRUE(IsErr(out[5], "ParseError")) << out[5];
  EXPECT_EQ(out[6], "RESULT tc/2 rows=3 truncated=0");
  EXPECT_EQ(out[10], ".");
  EXPECT_TRUE(IsErr(out[11], "NotFound")) << out[11];
}

TEST(ServerTest, AdmissionControlRejectsPastPendingBound) {
  ServerLimits limits;
  limits.max_pending = 0;
  Server server(limits);
  auto session = server.NewSession();
  Load(server, *session, kTcProgram);
  std::vector<std::string> out = Drive(server, *session, {"?- tc(X, Y)."});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(IsErr(out.front(), "Unavailable")) << out.front();
  EXPECT_EQ(server.pending(), 0u);
}

TEST(ServerTest, SessionLifecycleActions) {
  Server server;
  auto session = server.NewSession();
  std::vector<std::string> out;
  EXPECT_EQ(server.HandleLine(*session, "PING", &out),
            Server::Action::kContinue);
  EXPECT_EQ(out.back(), "OK pong");
  EXPECT_EQ(server.HandleLine(*session, "QUIT", &out),
            Server::Action::kCloseSession);
  EXPECT_EQ(out.back(), "OK bye");
  EXPECT_EQ(server.HandleLine(*session, "SHUTDOWN", &out),
            Server::Action::kShutdown);
  EXPECT_EQ(out.back(), "OK shutdown");
}

TEST(ServerTest, EmbeddedLoadQueriesAndExplain) {
  Server server;
  auto session = server.NewSession();
  std::vector<std::string> out = Drive(
      server, *session,
      {"LOAD", "edge(1, 2). edge(2, 3).", "tc(X, Y) :- edge(X, Y).",
       "tc(X, Y) :- tc(X, Z), edge(Z, Y).", "?- tc(1, Y).", "END"});
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0], "OK loaded rules=2 facts=2 queries=1");
  EXPECT_EQ(out[1], "RESULT tc/2 rows=2 truncated=0");

  out = Drive(server, *session, {"EXPLAIN"});
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out.front(), "OK explain");
  EXPECT_EQ(out.back(), ".");
  const std::string joined = [&] {
    std::string j;
    for (const std::string& line : out) j += line + "\n";
    return j;
  }();
  EXPECT_NE(joined.find("tc"), std::string::npos);
}

TEST(ServerTest, StatsReportRegistryAndPlannerCounters) {
  Server server;
  auto session = server.NewSession();
  Load(server, *session, kTcProgram);
  Drive(server, *session, {"?- tc(X, Y)."});
  std::vector<std::string> out = Drive(server, *session, {"STATS"});
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), "OK stats");
  EXPECT_EQ(out.back(), ".");
  auto has = [&](const std::string& line) {
    return std::find(out.begin(), out.end(), line) != out.end();
  };
  EXPECT_TRUE(has("programs=1"));
  EXPECT_TRUE(has("program_misses=1"));
  EXPECT_TRUE(has("queries_served=1"));
  EXPECT_TRUE(has("session_queries=1"));
}

/// Collects the sorted row lines of a single-query reply (strips the
/// RESULT header and the "." terminator) so maintained and recomputed
/// answers compare deterministically.
std::vector<std::string> SortedRows(Server& server, Session& session,
                                    const std::string& goal) {
  std::vector<std::string> out = Drive(server, session, {goal});
  EXPECT_GE(out.size(), 2u);
  EXPECT_EQ(out.front().rfind("RESULT", 0), 0u) << out.front();
  std::vector<std::string> rows(out.begin() + 1, out.end() - 1);
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ServerTest, InsertMaintainsMaterializedViewIncrementally) {
  Server server;
  auto session = server.NewSession();
  Load(server, *session, kTcProgram);
  // First query materializes tc; INSERT must now maintain it in place
  // (unlike FACT, which drops the materialization and recomputes).
  Drive(server, *session, {"?- tc(X, Y)."});

  std::vector<std::string> out =
      Drive(server, *session, {"INSERT edge(4, 5)."});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front(), "OK insert applied=1 views=1 added=4") << out.front();

  // The maintained answer equals a from-scratch session given all facts.
  Server fresh_server;
  auto fresh = fresh_server.NewSession();
  Load(fresh_server, *fresh, StrCat(kTcProgram, "edge(4, 5).\n"));
  EXPECT_EQ(SortedRows(server, *session, "?- tc(X, Y)."),
            SortedRows(fresh_server, *fresh, "?- tc(X, Y)."));

  // Re-inserting is an idempotent no-op.
  out = Drive(server, *session, {"INSERT edge(4, 5)."});
  EXPECT_EQ(out.front(), "OK insert applied=0 views=0 added=0");

  out = Drive(server, *session, {"STATS"});
  EXPECT_NE(std::find(out.begin(), out.end(), "ivm_applied=1"), out.end());
}

TEST(ServerTest, DeleteRetractsDerivationsAndRederives) {
  Server server;
  auto session = server.NewSession();
  Load(server, *session, StrCat(kTcProgram, "edge(1, 3).\n"));
  Drive(server, *session, {"?- tc(X, Y)."});

  // Deleting edge(2,3) kills tc(2,3)/tc(2,4) but tc(1,3)/tc(1,4) survive
  // through the direct edge(1,3) — the re-derive half of DRed.
  std::vector<std::string> out =
      Drive(server, *session, {"DELETE edge(2, 3)."});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().rfind("OK delete removed=1 views=1", 0), 0u)
      << out.front();

  Server fresh_server;
  auto fresh = fresh_server.NewSession();
  Load(fresh_server, *fresh,
       "edge(1, 2). edge(3, 4). edge(1, 3).\n"
       "tc(X, Y) :- edge(X, Y).\n"
       "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n");
  EXPECT_EQ(SortedRows(server, *session, "?- tc(X, Y)."),
            SortedRows(fresh_server, *fresh, "?- tc(X, Y)."));

  // Deleting an absent fact is an idempotent no-op.
  out = Drive(server, *session, {"DELETE edge(9, 9)."});
  EXPECT_EQ(out.front(), "OK delete removed=0 views=0 retracted=0 rederived=0");

  out = Drive(server, *session, {"STATS"});
  EXPECT_NE(std::find(out.begin(), out.end(), "ivm_retracted=1"), out.end());
}

TEST(ServerTest, InsertValidationRejectsWithoutTouchingSessionState) {
  Server server;
  auto session = server.NewSession();
  Load(server, *session, kTcProgram);
  const std::vector<std::string> before =
      SortedRows(server, *session, "?- tc(X, Y).");

  // Every malformed shape replies ERR InvalidArgument (or ParseError for
  // unparsable text) and leaves the session untouched.
  std::vector<std::string> out = Drive(
      server, *session,
      {"INSERT", "INSERT edge(X, 2).", "INSERT tc(1, 2).",
       "INSERT edge(1, 2, 3).", "INSERT edge(1, 2). edge(3, 4).",
       "INSERT ?- tc(X, Y).", "DELETE edge(X, 2).", "DELETE tc(1, 2)."});
  ASSERT_EQ(out.size(), 8u);
  for (const std::string& reply : out) {
    EXPECT_TRUE(IsErr(reply, "InvalidArgument") || IsErr(reply, "ParseError"))
        << reply;
  }

  EXPECT_EQ(SortedRows(server, *session, "?- tc(X, Y)."), before);
  out = Drive(server, *session, {"STATS"});
  EXPECT_NE(std::find(out.begin(), out.end(), "ivm_applied=0"), out.end());
  EXPECT_NE(std::find(out.begin(), out.end(), "ivm_retracted=0"), out.end());
}

TEST(ServerTest, MetricsExportPrometheusTextFormat) {
  Server server;
  auto session = server.NewSession();
  Load(server, *session, kTcProgram);
  Drive(server, *session, {"?- tc(X, Y).", "INSERT edge(4, 5)."});

  std::vector<std::string> out = Drive(server, *session, {"METRICS"});
  ASSERT_GE(out.size(), 3u);
  EXPECT_EQ(out.front(), "OK metrics");
  EXPECT_EQ(out.back(), ".");
  auto has = [&](const std::string& line) {
    return std::find(out.begin(), out.end(), line) != out.end();
  };
  EXPECT_TRUE(has("# TYPE linrec_queries_served counter"));
  EXPECT_TRUE(has("linrec_queries_served 1"));
  EXPECT_TRUE(has("# TYPE linrec_ivm_applied counter"));
  EXPECT_TRUE(has("linrec_ivm_applied 1"));
  EXPECT_TRUE(has("# TYPE linrec_pending gauge"));
  EXPECT_TRUE(has("linrec_pending 0"));
  // Every non-frame line is a comment or a "linrec_<name> <value>" sample.
  for (std::size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_TRUE(out[i].rfind("# TYPE linrec_", 0) == 0 ||
                out[i].rfind("linrec_", 0) == 0)
        << out[i];
  }
}

/// The tentpole acceptance test: N concurrent sessions submit the same TC
/// program and query it; the program compiles exactly once (one registry
/// miss, one planner plan-cache miss for the closure), and every session
/// sees exactly the serial answer.
TEST(ServerTest, ConcurrentSessionsShareOnePlanCompilation) {
  constexpr int kSessions = 8;
  Server server;

  // The serial reference answer.
  std::vector<std::string> expected;
  {
    Server reference;
    auto session = reference.NewSession();
    Load(reference, *session, kTcProgram);
    expected = Drive(reference, *session, {"?- tc(X, Y)."});
    ASSERT_EQ(expected.front(), "RESULT tc/2 rows=6 truncated=0");
  }

  std::vector<std::vector<std::string>> replies(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&server, &replies, i] {
      auto session = server.NewSession();
      Load(server, *session, kTcProgram);
      replies[i] = Drive(server, *session, {"?- tc(X, Y)."});
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kSessions; ++i) {
    // Rows may arrive in any storage order; compare as sets.
    std::vector<std::string> got = replies[i];
    std::vector<std::string> want = expected;
    ASSERT_FALSE(got.empty());
    EXPECT_EQ(got.front(), want.front());  // identical RESULT header
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "session " << i;
  }

  // One compile for all eight sessions: one registry miss (the program)
  // and one planner plan-cache miss (its recursive closure).
  EXPECT_EQ(server.registry().misses(), 1u);
  EXPECT_EQ(server.registry().hits(), static_cast<std::size_t>(kSessions - 1));
  EXPECT_EQ(server.planner().plan_cache_misses(), 1u);
}

}  // namespace
}  // namespace linrec
