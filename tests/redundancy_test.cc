#include "redundancy/analyze.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cq/compose.h"
#include "cq/homomorphism.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "eval/fixpoint.h"
#include "redundancy/closure.h"
#include "redundancy/factorize.h"
#include "workload/databases.h"
#include "workload/graphs.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

bool IsRedundant(const RedundancyReport& report, const std::string& pred) {
  return std::find(report.redundant_predicates.begin(),
                   report.redundant_predicates.end(),
                   pred) != report.redundant_predicates.end();
}

TEST(AnalyzeTest, Example61CheapIsRedundant) {
  // Figure 6: buys(x,y) :- knows(x,z), buys(z,y), cheap(y).
  LinearRule r = LR("buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).");
  auto report = AnalyzeRedundancy(r);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(IsRedundant(*report, "cheap"));
  EXPECT_FALSE(IsRedundant(*report, "knows"));
}

TEST(AnalyzeTest, Example62RIsRedundant) {
  // Figure 7: P(w,x,y,z) :- P(x,w,x,u), Q(x,u), R(x,y), S(u,z).
  LinearRule r = LR("p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
  auto report = AnalyzeRedundancy(r);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(IsRedundant(*report, "rr"));
  EXPECT_FALSE(IsRedundant(*report, "q"));
  EXPECT_FALSE(IsRedundant(*report, "s"));
}

TEST(AnalyzeTest, TransitiveClosureHasNoRedundancy) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto report = AnalyzeRedundancy(r);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->redundant_predicates.empty());
}

TEST(FactorizeTest, Example62Factorization) {
  LinearRule a = LR("p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
  auto f = FactorFirstRedundant(a);
  ASSERT_TRUE(f.ok()) << f.status();
  // The paper works this example with L = 2.
  EXPECT_EQ(f->L, 2);
  EXPECT_TRUE(f->product_verified) << "A^L = B C^L";
  EXPECT_TRUE(f->swap_verified) << "C^L(BC^L) = C^L(C^L B)";

  // Paper's C: P(w,x,y,z) :- P(x,w,x,z), R(x,y).
  auto expected_c = ParseLinearRule("p(W,X,Y,Z) :- p(X,W,X,Z), rr(X,Y).");
  ASSERT_TRUE(expected_c.ok());
  EXPECT_TRUE(AreEquivalent(f->C.rule(), expected_c->rule()))
      << ToString(f->C);

  // Paper's C^2: P(w,x,y,z) :- P(w,x,w,z), R(w,x), R(x,y).
  auto expected_c2 =
      ParseLinearRule("p(W,X,Y,Z) :- p(W,X,W,Z), rr(W,X), rr(X,Y).");
  ASSERT_TRUE(expected_c2.ok());
  EXPECT_TRUE(AreEquivalent(f->CL.rule(), expected_c2->rule()))
      << ToString(f->CL);

  // C^L from A^L's bridges must equal Power(C, L).
  auto powered = Power(f->C, f->L);
  ASSERT_TRUE(powered.ok());
  EXPECT_TRUE(AreEquivalent(powered->rule(), f->CL.rule()));
}

TEST(FactorizeTest, Example62BAndC2Commute) {
  // Figure 8 caption: B and C² commute.
  LinearRule a = LR("p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
  auto f = FactorFirstRedundant(a);
  ASSERT_TRUE(f.ok());
  auto bc = Compose(f->B, f->CL);
  auto cb = Compose(f->CL, f->B);
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_TRUE(AreEquivalent(bc->rule(), cb->rule()));
}

TEST(FactorizeTest, Example63SwapWithoutCommutativity) {
  // Example 6.3 / Figure 9: Q(y,u) instead of Q(x,u). BC² ≠ C²B, yet
  // C²(BC²) = C²(C²B) — the weaker condition of Theorem 4.2 holds.
  LinearRule a = LR("p(W,X,Y,Z) :- p(X,W,X,U), q(Y,U), rr(X,Y), s(U,Z).");
  auto analysis_report = AnalyzeRedundancy(a);
  ASSERT_TRUE(analysis_report.ok());
  EXPECT_TRUE(IsRedundant(*analysis_report, "rr"));

  auto f = FactorFirstRedundant(a);
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_TRUE(f->product_verified);
  EXPECT_TRUE(f->swap_verified);

  auto bc = Compose(f->B, f->CL);
  auto cb = Compose(f->CL, f->B);
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_FALSE(AreEquivalent(bc->rule(), cb->rule()))
      << "Example 6.3: BC^2 and C^2B must NOT be equivalent";
}

TEST(RedundantClosureTest, MatchesDirectClosureExample61) {
  LinearRule r = LR("buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).");
  auto f = FactorFirstRedundant(r);
  ASSERT_TRUE(f.ok()) << f.status();
  KnowsBuysWorkload w = MakeKnowsBuys(25, 60, 10, 0.5, 12, 21);

  auto direct = SemiNaiveClosure({r}, w.db, w.q);
  ASSERT_TRUE(direct.ok());
  auto fast = RedundantClosure(*f, w.db, w.q);
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(*direct, *fast);
}

TEST(RedundantClosureTest, MatchesDirectClosureExample62) {
  LinearRule a = LR("p(W,X,Y,Z) :- p(X,W,X,U), q(X,U), rr(X,Y), s(U,Z).");
  auto f = FactorFirstRedundant(a);
  ASSERT_TRUE(f.ok());

  Database db;
  db.GetOrCreate("q", 2) = RandomGraph(10, 25, 31);
  db.GetOrCreate("rr", 2) = RandomGraph(10, 25, 32);
  db.GetOrCreate("s", 2) = RandomGraph(10, 25, 33);
  Relation q(4);
  q.Insert({1, 2, 3, 4});
  q.Insert({2, 3, 4, 5});
  q.Insert({5, 1, 2, 3});
  q.Insert({4, 4, 1, 9});

  auto direct = SemiNaiveClosure({a}, db, q);
  ASSERT_TRUE(direct.ok());
  auto fast = RedundantClosure(*f, db, q);
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(*direct, *fast);
}

TEST(RedundantClosureTest, MatchesDirectClosureExample63) {
  LinearRule a = LR("p(W,X,Y,Z) :- p(X,W,X,U), q(Y,U), rr(X,Y), s(U,Z).");
  auto f = FactorFirstRedundant(a);
  ASSERT_TRUE(f.ok());

  Database db;
  db.GetOrCreate("q", 2) = RandomGraph(8, 20, 41);
  db.GetOrCreate("rr", 2) = RandomGraph(8, 20, 42);
  db.GetOrCreate("s", 2) = RandomGraph(8, 20, 43);
  Relation q(4);
  q.Insert({1, 2, 3, 4});
  q.Insert({2, 1, 0, 3});
  q.Insert({3, 3, 3, 3});

  auto direct = SemiNaiveClosure({a}, db, q);
  ASSERT_TRUE(direct.ok());
  auto fast = RedundantClosure(*f, db, q);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*direct, *fast);
}

TEST(RedundantClosureTest, UnverifiedFactorizationRejected) {
  LinearRule r = LR("buys(X,Y) :- knows(X,Z), buys(Z,Y), cheap(Y).");
  auto f = FactorFirstRedundant(r);
  ASSERT_TRUE(f.ok());
  RedundantFactorization broken = *f;
  broken.swap_verified = false;
  Database db;
  Relation q(2);
  EXPECT_FALSE(RedundantClosure(broken, db, q).ok());
}

TEST(FactorizeTest, NonRestrictedClassRejected) {
  LinearRule r = LR("p(X,Y) :- p(U,V), q(X), q(Y).");
  EXPECT_FALSE(FactorRedundant(r, 0).ok());
}

TEST(FactorizeTest, NoBoundedBridgeIsNotFound) {
  LinearRule r = LR("p(X,Y) :- p(X,Z), e(Z,Y).");
  auto f = FactorFirstRedundant(r);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace linrec
