// Guard rails: the near-linear analyses must stay near-linear. These tests
// run the large-input paths under generous wall-clock budgets so accidental
// quadratic regressions fail loudly, and exercise deep/wide evaluation
// shapes end to end.

#include <gtest/gtest.h>

#include <chrono>

#include "analysis/rule_analysis.h"
#include "commutativity/syntactic.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "workload/graphs.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TEST(StressTest, SyntacticTestAtArity512) {
  auto pair = MakeRestrictedCommutingPair(256);  // arity 512, a ≈ 3K
  ASSERT_TRUE(pair.ok());
  auto start = std::chrono::steady_clock::now();
  auto result = CheckSyntacticCondition(pair->first, pair->second);
  double ms = MillisSince(start);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->condition_holds);
  // Measured ≈3 ms in Release; 2000 ms catches quadratic regressions even
  // on slow debug builds.
  EXPECT_LT(ms, 2000.0) << "syntactic test is no longer near-linear";
}

TEST(StressTest, RuleAnalysisAtArity1024) {
  auto pair = MakeRestrictedCommutingPair(512);
  ASSERT_TRUE(pair.ok());
  auto start = std::chrono::steady_clock::now();
  auto analysis = RuleAnalysis::Compute(pair->first);
  double ms = MillisSince(start);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->commutativity_bridges().size(), 1024u);
  EXPECT_LT(ms, 3000.0) << "RuleAnalysis is no longer near-linear";
}

TEST(StressTest, DeepChainClosure) {
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  ASSERT_TRUE(lr.ok());
  Database db;
  db.GetOrCreate("e", 2) = ChainGraph(3000);
  Relation q(2);
  q.Insert({0, 0});
  ClosureStats stats;
  auto out = SemiNaiveClosure({*lr}, db, q, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3000u);
  EXPECT_EQ(stats.iterations, 3000u);
  EXPECT_EQ(stats.duplicates, 0u);  // chains derive each tuple once
}

TEST(StressTest, WideFanoutSingleStep) {
  // One application over a high-fanout relation: exercises index buckets.
  auto lr = ParseLinearRule("p(X,Y) :- p(X,Z), e(Z,Y).");
  ASSERT_TRUE(lr.ok());
  Database db;
  Relation& e = db.GetOrCreate("e", 2);
  for (int i = 0; i < 2000; ++i) e.Insert({0, i + 1});
  Relation q(2);
  q.Insert({7, 0});
  ClosureStats stats;
  auto out = ApplySum({*lr}, db, q, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2000u);
  EXPECT_EQ(stats.derivations, 2000u);
}

TEST(StressTest, ManyRulesOnePredicate) {
  // 16 mutually commuting operators: planner + decomposed evaluation.
  std::vector<LinearRule> rules;
  Database db;
  RuleBuilder unused;
  for (int i = 0; i < 16; ++i) {
    // Rules touch disjoint positions of an 16-ary predicate... keep it
    // simpler: all free-1-persistent except position i.
    std::string head = "p(";
    std::string body = "p(";
    for (int j = 0; j < 4; ++j) {
      head += (j ? "," : "");
      head += "X" + std::to_string(j);
      body += (j ? "," : "");
      body += (j == i % 4) ? "U" : "X" + std::to_string(j);
    }
    std::string text = head + ") :- " + body + "), e" +
                       std::to_string(i) + "(U,X" + std::to_string(i % 4) +
                       ").";
    auto lr = ParseLinearRule(text);
    ASSERT_TRUE(lr.ok()) << text << ": " << lr.status();
    rules.push_back(*lr);
    db.GetOrCreate("e" + std::to_string(i), 2) = ChainGraph(6);
  }
  Relation q(4);
  q.Insert({0, 0, 0, 0});
  auto out = SemiNaiveClosure(rules, db, q);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(out->size(), 1u);
}

}  // namespace
}  // namespace linrec
