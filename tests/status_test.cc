#include "common/status.h"

#include <gtest/gtest.h>

#include "common/strings.h"

namespace linrec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kBudgetExhausted),
               "BudgetExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2), "a1-2");
}

}  // namespace
}  // namespace linrec
