#include "commutativity/power_commutativity.h"

#include <gtest/gtest.h>

#include <random>

#include "algebra/closure.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "workload/graphs.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

LinearRule LR(const std::string& text) {
  auto lr = ParseLinearRule(text);
  EXPECT_TRUE(lr.ok()) << lr.status();
  return *lr;
}

TEST(AbsorptionTest, CommutingPairFoundAtOneOne) {
  LinearRule b = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule c = LR("p(X,Y) :- p(U,Y), up(X,U).");
  auto witness = FindAbsorption(b, c, 3);
  ASSERT_TRUE(witness.ok());
  ASSERT_TRUE(witness->found);
  EXPECT_EQ(witness->k, 1);
  EXPECT_EQ(witness->l, 1);
}

TEST(AbsorptionTest, StrongerFilterAbsorbs) {
  // C's filter subsumes B's: CB = C, witnessed at (k,l) = (0,1).
  LinearRule b = LR("p(X) :- p(X), g1(X).");
  LinearRule c = LR("p(X) :- p(X), g1(X), g2(X).");
  auto witness = FindAbsorption(b, c, 3);
  ASSERT_TRUE(witness.ok());
  ASSERT_TRUE(witness->found);
  EXPECT_EQ(witness->k, 0);
  EXPECT_EQ(witness->l, 1);
}

TEST(AbsorptionTest, NonCommutingPairNotFound) {
  LinearRule b = LR("p(X,Y) :- p(X,Z), q(Z,Y).");
  LinearRule c = LR("p(X,Y) :- p(X,Z), rr(Z,Y).");
  auto witness = FindAbsorption(b, c, 3);
  ASSERT_TRUE(witness.ok());
  EXPECT_FALSE(witness->found);
}

TEST(AbsorptionTest, WitnessLicensesDecomposition) {
  // The theorem: CB ≤ B^kC^l (k or l ≤ 1) ⇒ (B+C)* = B*C*. Verify
  // semantically for the filter pair on a random database.
  LinearRule b = LR("p(X) :- p(X), g1(X).");
  LinearRule c = LR("p(X) :- p(X), g1(X), g2(X).");
  auto witness = FindAbsorption(b, c, 3);
  ASSERT_TRUE(witness.ok());
  ASSERT_TRUE(witness->found);

  Database db;
  Relation& g1 = db.GetOrCreate("g1", 1);
  Relation& g2 = db.GetOrCreate("g2", 1);
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> pick(0, 20);
  for (int i = 0; i < 12; ++i) g1.Insert({pick(rng)});
  for (int i = 0; i < 12; ++i) g2.Insert({pick(rng)});
  Relation q(1);
  for (int i = 0; i < 10; ++i) q.Insert({pick(rng)});

  auto direct = DirectClosure({b, c}, db, q);
  auto decomposed = DecomposedClosure({{b}, {c}}, db, q);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(decomposed.ok());
  EXPECT_EQ(*direct, *decomposed);
}

TEST(PowersCommuteTest, SquaresOfNonCommutingPermutationsCommute) {
  // r1 swaps (X,Y); r2 swaps (Y,Z). They do not commute, but their squares
  // are both the identity permutation on positions — which commute.
  LinearRule r1 = LR("p(X,Y,Z) :- p(Y,X,Z).");
  LinearRule r2 = LR("p(X,Y,Z) :- p(X,Z,Y).");
  auto first = PowersCommute(r1, 1, r2, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(*first);
  auto squares = PowersCommute(r1, 2, r2, 2);
  ASSERT_TRUE(squares.ok());
  EXPECT_TRUE(*squares);
}

TEST(PowersCommuteTest, CommutingPairCommutesAtAllSmallPowers) {
  LinearRule b = LR("p(X,Y) :- p(X,V), down(V,Y).");
  LinearRule c = LR("p(X,Y) :- p(U,Y), up(X,U).");
  for (int i = 1; i <= 3; ++i) {
    for (int j = 1; j <= 3; ++j) {
      auto commute = PowersCommute(b, i, c, j);
      ASSERT_TRUE(commute.ok());
      EXPECT_TRUE(*commute) << "powers " << i << "," << j;
    }
  }
}

TEST(AbsorptionTest, GeneratedPairs) {
  auto pair = MakeRestrictedCommutingPair(2);
  ASSERT_TRUE(pair.ok());
  auto witness = FindAbsorption(pair->first, pair->second, 2);
  ASSERT_TRUE(witness.ok());
  EXPECT_TRUE(witness->found);

  auto bad = MakeRestrictedNonCommutingPair(2);
  ASSERT_TRUE(bad.ok());
  auto no_witness = FindAbsorption(bad->first, bad->second, 2);
  ASSERT_TRUE(no_witness.ok());
  EXPECT_FALSE(no_witness->found);
}

TEST(AbsorptionTest, InvalidBudgetRejected) {
  LinearRule b = LR("p(X) :- p(X), g1(X).");
  EXPECT_FALSE(FindAbsorption(b, b, 0).ok());
}

}  // namespace
}  // namespace linrec
