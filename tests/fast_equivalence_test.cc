#include "cq/fast_equivalence.h"

#include <gtest/gtest.h>

#include "cq/homomorphism.h"
#include "datalog/parser.h"

namespace linrec {
namespace {

Rule R(const std::string& text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

TEST(FastEquivalenceTest, IsomorphicRulesAccepted) {
  Rule a = R("p(X,Y) :- p(X,Z), e(Z,W), f(W,Y).");
  Rule b = R("p(X,Y) :- p(X,A), e(A,B), f(B,Y).");
  auto verdict = FastEquivalenceDistinctPredicates(a, b);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
}

TEST(FastEquivalenceTest, DifferentStructureRejected) {
  Rule a = R("p(X,Y) :- p(X,Z), e(Z,Y).");
  Rule b = R("p(X,Y) :- p(Z,Y), e(X,Z).");
  auto verdict = FastEquivalenceDistinctPredicates(a, b);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
}

TEST(FastEquivalenceTest, PredicateSetMismatch) {
  Rule a = R("p(X) :- e(X,Y).");
  Rule b = R("p(X) :- f(X,Y).");
  auto verdict = FastEquivalenceDistinctPredicates(a, b);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
}

TEST(FastEquivalenceTest, RepeatedPredicatesPuntToSlowPath) {
  Rule a = R("p(X) :- e(X,Y), e(Y,Z).");
  Rule b = R("p(X) :- e(X,Y), e(Y,Z).");
  EXPECT_FALSE(FastEquivalenceDistinctPredicates(a, b).has_value());
}

TEST(FastEquivalenceTest, NonInjectiveAlignmentRejected) {
  // Forced map sends Y,Z of `a` onto the single W of `b` — not injective,
  // and indeed the queries differ.
  Rule a = R("p(X) :- e(X,Y), f(X,Z).");
  Rule b = R("p(X) :- e(X,W), f(X,W).");
  auto verdict = FastEquivalenceDistinctPredicates(a, b);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(*verdict);
  EXPECT_FALSE(AreEquivalent(a, b));
}

TEST(FastEquivalenceTest, AgreesWithHomomorphismTest) {
  const char* rules[] = {
      "p(X,Y) :- p(X,Z), e(Z,Y).",
      "p(X,Y) :- p(Z,Y), e(X,Z).",
      "p(X,Y) :- p(X,Z), e(Z,W), f(W,Y).",
      "p(X,Y) :- p(X,X), e(X,Y).",
      "p(X,Y) :- p(Y,X), e(X,Y).",
  };
  for (const char* ta : rules) {
    for (const char* tb : rules) {
      Rule a = R(ta);
      Rule b = R(tb);
      auto fast = FastEquivalenceDistinctPredicates(a, b);
      if (fast.has_value()) {
        EXPECT_EQ(*fast, AreEquivalent(a, b))
            << "disagreement on " << ta << " vs " << tb;
      }
    }
  }
}

TEST(FastEquivalenceTest, HeadRenamingHandled) {
  Rule a = R("p(X,Y) :- p(X,Z), e(Z,Y).");
  Rule b = R("p(A,B) :- p(A,C), e(C,B).");
  auto verdict = FastEquivalenceDistinctPredicates(a, b);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);
}

}  // namespace
}  // namespace linrec
