// Property tests for the commutativity machinery over randomized rules.
//
// Invariants checked (seeded sweeps via TEST_P):
//  * Theorem 5.1 (soundness): syntactic condition ⇒ definitional
//    commutativity ⇒ semantic commutativity on random databases.
//  * Theorem 5.2 (exactness in the restricted class): syntactic condition ⇔
//    definitional commutativity.
//  * Decomposition: if the rules commute, (A1+A2)*q = A1*(A2*q).

#include <gtest/gtest.h>

#include <random>

#include "algebra/closure.h"
#include "commutativity/definitional.h"
#include "commutativity/syntactic.h"
#include "datalog/printer.h"
#include "datalog/traits.h"
#include "eval/apply.h"
#include "workload/graphs.h"
#include "workload/rulegen.h"

namespace linrec {
namespace {

/// Builds a database covering every predicate of both rules with random
/// binary/unary/ternary relations.
Database CoveringDb(const LinearRule& r1, const LinearRule& r2,
                    std::uint32_t seed) {
  Database db;
  std::mt19937 rng(seed);
  auto cover = [&](const Rule& r) {
    for (const Atom& atom : r.body()) {
      if (atom.predicate == r.head().predicate) continue;
      Relation& rel = db.GetOrCreate(atom.predicate, atom.arity());
      std::uniform_int_distribution<int> pick(0, 9);
      for (int i = 0; i < 25; ++i) {
        std::vector<Value> values;
        for (std::size_t p = 0; p < atom.arity(); ++p) {
          values.push_back(pick(rng));
        }
        rel.Insert(Tuple(std::move(values)));
      }
    }
  };
  cover(r1.rule());
  cover(r2.rule());
  return db;
}

Relation RandomSeedRelation(std::size_t arity, std::uint32_t seed) {
  Relation q(arity);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, 9);
  for (int i = 0; i < 6; ++i) {
    std::vector<Value> values;
    for (std::size_t p = 0; p < arity; ++p) values.push_back(pick(rng));
    q.Insert(Tuple(std::move(values)));
  }
  return q;
}

class RandomRulePairProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomRulePairProperty, SyntacticSoundAndExactInRestrictedClass) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  auto r1 = RandomLinearRule(3, 2, seed * 2 + 1);
  auto r2 = RandomLinearRule(3, 2, seed * 2 + 2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());

  auto syntactic = CheckSyntacticCondition(*r1, *r2);
  ASSERT_TRUE(syntactic.ok()) << syntactic.status();
  auto exact = DefinitionalCommute(*r1, *r2);
  ASSERT_TRUE(exact.ok());

  if (syntactic->condition_holds) {
    EXPECT_TRUE(*exact) << "Theorem 5.1 violated:\n  r1: " << ToString(*r1)
                        << "\n  r2: " << ToString(*r2);
  }
  bool restricted = ComputeTraits(r1->rule()).InRestrictedClass() &&
                    ComputeTraits(r2->rule()).InRestrictedClass();
  if (restricted && *exact) {
    EXPECT_TRUE(syntactic->condition_holds)
        << "Theorem 5.2 (necessity) violated:\n  r1: " << ToString(*r1)
        << "\n  r2: " << ToString(*r2);
  }
}

TEST_P(RandomRulePairProperty, DefinitionalImpliesSemanticCommutation) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  auto r1 = RandomLinearRule(2, 2, seed * 3 + 1);
  auto r2 = RandomLinearRule(2, 2, seed * 3 + 2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  auto exact = DefinitionalCommute(*r1, *r2);
  ASSERT_TRUE(exact.ok());
  if (!*exact) return;

  Database db = CoveringDb(*r1, *r2, seed);
  Relation q = RandomSeedRelation(2, seed + 99);
  // A1(A2 q) == A2(A1 q).
  auto a2q = ApplySum({*r2}, db, q);
  ASSERT_TRUE(a2q.ok());
  auto a1a2q = ApplySum({*r1}, db, *a2q);
  ASSERT_TRUE(a1a2q.ok());
  auto a1q = ApplySum({*r1}, db, q);
  ASSERT_TRUE(a1q.ok());
  auto a2a1q = ApplySum({*r2}, db, *a1q);
  ASSERT_TRUE(a2a1q.ok());
  EXPECT_EQ(*a1a2q, *a2a1q)
      << "definitional commutativity not reflected semantically:\n  r1: "
      << ToString(*r1) << "\n  r2: " << ToString(*r2);
}

TEST_P(RandomRulePairProperty, CommutingPairsDecompose) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  auto r1 = RandomLinearRule(2, 2, seed * 5 + 1);
  auto r2 = RandomLinearRule(2, 2, seed * 5 + 2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  auto exact = DefinitionalCommute(*r1, *r2);
  ASSERT_TRUE(exact.ok());
  if (!*exact) return;

  Database db = CoveringDb(*r1, *r2, seed + 7);
  Relation q = RandomSeedRelation(2, seed + 17);
  auto direct = DirectClosure({*r1, *r2}, db, q);
  ASSERT_TRUE(direct.ok());
  auto decomposed = DecomposedClosure({{*r1}, {*r2}}, db, q);
  ASSERT_TRUE(decomposed.ok());
  EXPECT_EQ(*direct, *decomposed)
      << "(A1+A2)* != A1*A2* for commuting pair:\n  r1: " << ToString(*r1)
      << "\n  r2: " << ToString(*r2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRulePairProperty,
                         ::testing::Range(0, 40));

class GeneratedPairProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedPairProperty, MirroredPairsCommuteAtEveryArity) {
  int half = GetParam();
  auto pair = MakeRestrictedCommutingPair(half);
  ASSERT_TRUE(pair.ok());
  auto syntactic = CheckSyntacticCondition(pair->first, pair->second);
  ASSERT_TRUE(syntactic.ok());
  EXPECT_TRUE(syntactic->condition_holds);
  auto exact = DefinitionalCommute(pair->first, pair->second);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(*exact);
}

TEST_P(GeneratedPairProperty, SpoiledPairsDoNotCommute) {
  int half = GetParam();
  auto pair = MakeRestrictedNonCommutingPair(half);
  ASSERT_TRUE(pair.ok());
  auto syntactic = CheckSyntacticCondition(pair->first, pair->second);
  ASSERT_TRUE(syntactic.ok());
  EXPECT_FALSE(syntactic->condition_holds);
  auto exact = DefinitionalCommute(pair->first, pair->second);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(*exact);
}

INSTANTIATE_TEST_SUITE_P(Arities, GeneratedPairProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace linrec
